module Splitmix = Rz_util.Splitmix
module Rel_db = Rz_asrel.Rel_db

type tier = Tier1 | Mid | Stub

type params = {
  seed : int;
  n_tier1 : int;
  n_mid : int;
  n_stub : int;
  mid_peering_prob : float;
  stub_multihome_prob : float;
  v6_fraction : float;
  max_prefixes : int;
}

let default_params =
  { seed = 42;
    n_tier1 = 5;
    n_mid = 120;
    n_stub = 500;
    mid_peering_prob = 0.35;
    stub_multihome_prob = 0.3;
    v6_fraction = 0.2;
    max_prefixes = 12 }

type t = {
  params : params;
  rels : Rel_db.t;
  ases : Rz_net.Asn.t array;
  tier_of : (Rz_net.Asn.t, tier) Hashtbl.t;
  origins : (Rz_net.Asn.t, Rz_net.Prefix.t list) Hashtbl.t;
}

(* Prefix pool: sequential IPv4 /24s out of 20.0.0.0/6-ish public space and
   IPv6 /48s out of 2a00::/16. Indices never collide across ASes. *)
let v4_prefix i =
  let base = 20 lsl 24 in
  Rz_net.Prefix.v4 ((base + (i lsl 8)) land 0xFFFFFFFF) 24

let v6_prefix i =
  let hi = Int64.logor 0x2a00_0000_0000_0000L (Int64.shift_left (Int64.of_int i) 16) in
  Rz_net.Prefix.v6 (hi, 0L) 48

let generate params =
  let rng = Splitmix.create params.seed in
  let rels = Rel_db.create () in
  let tier_of = Hashtbl.create 256 in
  let origins = Hashtbl.create 256 in
  let n_total = params.n_tier1 + params.n_mid + params.n_stub in
  (* ASN assignment: spread out to look like real allocations. *)
  let asn_of_index i = 1000 + (i * 7) in
  let ases = Array.init n_total asn_of_index in
  let tier_of_index i =
    if i < params.n_tier1 then Tier1
    else if i < params.n_tier1 + params.n_mid then Mid
    else Stub
  in
  Array.iteri (fun i asn -> Hashtbl.replace tier_of asn (tier_of_index i)) ases;
  (* Customer counts drive preferential attachment. *)
  let customer_count = Array.make n_total 0 in
  let pick_provider ~among_upto ~eligible =
    (* Preferential attachment among indexes < among_upto passing
       [eligible]: weight = customers + 1. *)
    let total = ref 0 in
    for j = 0 to among_upto - 1 do
      if eligible j then total := !total + customer_count.(j) + 1
    done;
    if !total = 0 then None
    else begin
      let target = Splitmix.int rng !total in
      let acc = ref 0 and found = ref None in
      (try
         for j = 0 to among_upto - 1 do
           if eligible j then begin
             acc := !acc + customer_count.(j) + 1;
             if !acc > target then begin
               found := Some j;
               raise Exit
             end
           end
         done
       with Exit -> ());
      !found
    end
  in
  (* Tier-1 clique: full mesh of peerings. *)
  for i = 0 to params.n_tier1 - 1 do
    for j = i + 1 to params.n_tier1 - 1 do
      Rel_db.add_p2p rels ases.(i) ases.(j)
    done
  done;
  Rel_db.set_clique rels (Array.to_list (Array.sub ases 0 params.n_tier1));
  (* Mid (transit) layer: 1-3 providers among Tier-1s and earlier mids. *)
  let mid_start = params.n_tier1 in
  let mid_end = params.n_tier1 + params.n_mid in
  for i = mid_start to mid_end - 1 do
    let n_providers = 1 + Splitmix.int rng 3 in
    let chosen = ref [] in
    for _ = 1 to n_providers do
      match pick_provider ~among_upto:i ~eligible:(fun j -> not (List.mem j !chosen)) with
      | Some j ->
        chosen := j :: !chosen;
        Rel_db.add_p2c rels ~provider:ases.(j) ~customer:ases.(i);
        customer_count.(j) <- customer_count.(j) + 1
      | None -> ()
    done
  done;
  (* Lateral peering among mids. *)
  for i = mid_start to mid_end - 1 do
    if Splitmix.chance rng params.mid_peering_prob then begin
      let n_peers = 1 + Splitmix.int rng 3 in
      for _ = 1 to n_peers do
        let j = mid_start + Splitmix.int rng params.n_mid in
        if
          j <> i
          && Rel_db.relationship rels ases.(i) ases.(j) = Rel_db.Unknown
        then Rel_db.add_p2p rels ases.(i) ases.(j)
      done
    end
  done;
  (* Stubs: 1 provider among mids (occasionally a Tier-1), sometimes 2. *)
  for i = mid_end to n_total - 1 do
    let allow_tier1 = Splitmix.chance rng 0.05 in
    let eligible j =
      if allow_tier1 then j < mid_end (* allow Tier-1 directly *)
      else j >= mid_start && j < mid_end
    in
    (match pick_provider ~among_upto:mid_end ~eligible with
     | Some j ->
       Rel_db.add_p2c rels ~provider:ases.(j) ~customer:ases.(i);
       customer_count.(j) <- customer_count.(j) + 1
     | None -> ());
    if Splitmix.chance rng params.stub_multihome_prob then begin
      match
        pick_provider ~among_upto:mid_end ~eligible:(fun j ->
            j >= mid_start && Rel_db.relationship rels ases.(j) ases.(i) = Rel_db.Unknown)
      with
      | Some j ->
        Rel_db.add_p2c rels ~provider:ases.(j) ~customer:ases.(i);
        customer_count.(j) <- customer_count.(j) + 1
      | None -> ()
    end
  done;
  (* Prefix origination: heavier for transit tiers, capped. *)
  let next_v4 = ref 0 and next_v6 = ref 0 in
  Array.iteri
    (fun i asn ->
      let base_count =
        match tier_of_index i with
        | Tier1 -> 4 + Splitmix.int rng 5
        | Mid -> 2 + Splitmix.int rng 4
        | Stub -> 1 + Splitmix.geometric rng 0.6
      in
      let count = min params.max_prefixes (max 1 base_count) in
      let prefixes =
        List.init count (fun _ ->
            if Splitmix.chance rng params.v6_fraction then begin
              let p = v6_prefix !next_v6 in
              incr next_v6;
              p
            end
            else begin
              let p = v4_prefix !next_v4 in
              incr next_v4;
              p
            end)
      in
      Hashtbl.replace origins asn prefixes)
    ases;
  { params; rels; ases; tier_of; origins }

let tier t asn = Option.value ~default:Stub (Hashtbl.find_opt t.tier_of asn)
let prefixes_of t asn = Option.value ~default:[] (Hashtbl.find_opt t.origins asn)
let n_ases t = Array.length t.ases
