(** Synthetic AS-level Internet topology.

    Substitute for the real AS graph underlying the paper's BGP dumps:
    a Tier-1 clique, a layer of transit ("mid") ASes attached by
    preferential attachment, and a large stub edge, with lateral peering —
    the structural mix (uphill links, peer links, Tier-1 core, power-law
    degree tail) the verification analysis depends on. Deterministic for a
    given seed. *)

type tier = Tier1 | Mid | Stub

type params = {
  seed : int;
  n_tier1 : int;
  n_mid : int;
  n_stub : int;
  mid_peering_prob : float;  (** probability a mid AS opens lateral peerings *)
  stub_multihome_prob : float;  (** probability a stub has a second provider *)
  v6_fraction : float;       (** fraction of originated prefixes that are IPv6 *)
  max_prefixes : int;        (** cap on prefixes per AS *)
}

val default_params : params
(** 5 Tier-1s, 120 mids, 500 stubs, seed 42. *)

type t = {
  params : params;
  rels : Rz_asrel.Rel_db.t;    (** ground-truth relationships, clique set *)
  ases : Rz_net.Asn.t array;   (** all ASNs, Tier-1s first, then mids, then stubs *)
  tier_of : (Rz_net.Asn.t, tier) Hashtbl.t;
  origins : (Rz_net.Asn.t, Rz_net.Prefix.t list) Hashtbl.t;
      (** prefixes each AS originates (its "ground truth" announcements) *)
}

val generate : params -> t

val tier : t -> Rz_net.Asn.t -> tier
val prefixes_of : t -> Rz_net.Asn.t -> Rz_net.Prefix.t list
val n_ases : t -> int
