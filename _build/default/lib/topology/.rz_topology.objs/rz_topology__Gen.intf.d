lib/topology/gen.mli: Hashtbl Rz_asrel Rz_net
