lib/topology/gen.ml: Array Hashtbl Int64 List Option Rz_asrel Rz_net Rz_util
