module Ast = Rz_policy.Ast

type result = {
  prefixes : (Rz_net.Prefix.t * Rz_net.Range_op.t) list;
  unresolved : string list;
}

(* Internal evaluation value: a finite set of prefix terms, or an
   unevaluable marker carrying the filter text. NOT is only supported in
   the [x AND NOT y] difference position, as in peval. *)
type value =
  | Set of (Rz_net.Prefix.t * Rz_net.Range_op.t) list
  | Opaque of string

let dedup terms =
  List.sort_uniq
    (fun (p1, o1) (p2, o2) ->
      let c = Rz_net.Prefix.compare p1 p2 in
      if c <> 0 then c else compare o1 o2)
    terms

(* Term-level difference: drop terms of [a] whose base prefix is covered
   by a term of [b] that admits it. Approximate on range operators in the
   same way peval is: a difference cannot split a term. *)
let covers (bp, bop) (ap, _) =
  Rz_net.Prefix.contains bp ap
  && (Rz_net.Range_op.matches bop ~declared:bp ~observed:ap
      || Rz_net.Range_op.is_more_specific bop
      || Rz_net.Prefix.equal bp ap)

let rec eval_value db (filter : Ast.filter) : value =
  match filter with
  | Ast.Prefix_set (members, outer) ->
    Set (List.map (fun (p, op) -> (p, Rz_net.Range_op.compose outer op)) members)
  | Ast.As_num (asn, op) ->
    Set (List.map (fun p -> (p, op)) (Db.origin_prefixes db asn))
  | Ast.As_set_ref (name, op) ->
    if not (Db.as_set_exists db name) then Opaque (Ast.filter_to_string filter)
    else
      Set
        (Db.Asn_set.fold
           (fun asn acc ->
             List.rev_append
               (List.map (fun p -> (p, op)) (Db.origin_prefixes db asn))
               acc)
           (Db.flatten_as_set db name) [])
  | Ast.Route_set_ref (name, op) ->
    if not (Db.route_set_exists db name) then Opaque (Ast.filter_to_string filter)
    else
      Set
        (List.map
           (fun (p, inner) -> (p, Rz_net.Range_op.compose op inner))
           (Db.flatten_route_set db name))
  | Ast.Filter_set_ref name ->
    (match Db.find_filter_set db name with
     | Some fs -> eval_value db fs.filter
     | None -> Opaque (Ast.filter_to_string filter))
  | Ast.Or_f (a, b) ->
    (match (eval_value db a, eval_value db b) with
     | Set x, Set y -> Set (List.rev_append x y)
     | Opaque o, _ | _, Opaque o -> Opaque o)
  | Ast.And_f (a, Ast.Not_f b) | Ast.And_f (Ast.Not_f b, a) ->
    (* the peval difference form *)
    (match (eval_value db a, eval_value db b) with
     | Set x, Set y ->
       Set (List.filter (fun term -> not (List.exists (fun bt -> covers bt term) y)) x)
     | Opaque o, _ | _, Opaque o -> Opaque o)
  | Ast.And_f (a, b) ->
    (match (eval_value db a, eval_value db b) with
     | Set x, Set y ->
       (* intersection: keep terms of x admitted by some term of y, and
          vice versa, narrowing to the more specific of the two *)
       let keep from_side other =
         List.filter (fun term -> List.exists (fun ot -> covers ot term) other) from_side
       in
       Set (keep x y @ keep y x)
     | Opaque o, _ | _, Opaque o -> Opaque o)
  | Ast.Not_f _ | Ast.Any | Ast.Peer_as_filter | Ast.Path_regex _ | Ast.Community _
  | Ast.Fltr_martian -> Opaque (Ast.filter_to_string filter)

let eval db filter =
  (* evaluate, collecting opaque leaves instead of failing the whole
     expression where possible: OR of a set and an opaque keeps the set
     and reports the opaque part *)
  let unresolved = ref [] in
  let rec go f =
    match f with
    | Ast.Or_f (a, b) -> List.rev_append (go a) (go b)
    | _ ->
      (match eval_value db f with
       | Set terms -> terms
       | Opaque text ->
         unresolved := text :: !unresolved;
         [])
  in
  let prefixes = dedup (go filter) in
  { prefixes; unresolved = List.rev !unresolved }

let eval_string db text =
  match Rz_policy.Parser.parse_filter text with
  | Ok filter -> Ok (eval db filter)
  | Error e -> Error e

let to_prefix_list result =
  Rz_net.Prefix_agg.aggregate (List.map fst result.prefixes)
