(** Filter materialization — IRRToolSet's classic [peval]: evaluate an
    RPSL filter expression down to the concrete prefix set it denotes,
    resolving set and route-object references against the database. This
    is the generation direction (policy → router filter), complementary to
    the verifier's matching direction (route → policy).

    Set algebra: [OR] is union, [AND] intersection, and [AND NOT]
    difference — all computed on exact prefix terms (range operators are
    preserved per prefix where possible). Terms that do not denote a
    prefix set ([ANY], AS-path regexes, community predicates,
    [fltr-martian] in positive position) are reported as unresolved
    rather than silently dropped. *)

type result = {
  prefixes : (Rz_net.Prefix.t * Rz_net.Range_op.t) list;
      (** sorted, deduplicated (prefix, operator) terms *)
  unresolved : string list;
      (** sub-filters that cannot be materialized to a finite prefix set *)
}

val eval : Db.t -> Rz_policy.Ast.filter -> result

val eval_string : Db.t -> string -> (result, string) Stdlib.result
(** Parse then evaluate, e.g. [eval_string db "AS-FOO AND NOT AS65001"]. *)

val to_prefix_list : result -> Rz_net.Prefix.t list
(** Aggregated bare prefixes (operators widened away: a term with a
    more-specific operator contributes its base prefix). *)
