(** IRRd-style query protocol (the interface tools like BGPq4 use to
    resolve sets and prefixes against an IRR server; the paper builds on
    IRRd as the de-facto registry software). This module answers the
    protocol's query language over an in-memory {!Db.t} — the offline
    equivalent of `whois -h rr.ntt.net '!iAS-FOO,1'`.

    Supported queries:
    - [!gAS65000] — IPv4 prefixes originated by the AS
    - [!6AS65000] — IPv6 prefixes originated by the AS
    - [!iAS-FOO] — direct members of an as-set or route-set
    - [!iAS-FOO,1] — recursively flattened members
    - [!aAS-FOO] — aggregated prefix list for all route objects originated
      by the flattened as-set (IRRd's "prefix list for set" query; add
      [!a6] for IPv6)
    - [!mTYPE,KEY] — one object, re-rendered as RPSL ([aut-num], [as-set],
      [route-set], [route])
    - [!r192.0.2.0/24] — route objects matching the prefix exactly;
      [!r192.0.2.1/32,l] — covering (less specific) route objects
    - [!nNAME] — client identification (acknowledged, ignored)
    - [!q] — quit
    - anything else — a RIPE-style plain-text lookup (ASN, set name, or
      prefix), like the [whois] examples in the paper's Appendix A.

    Response framing follows IRRd: [A<length>] + data + [C] on success
    with data, [C] alone for success without data, [D] for "key not
    found", [F <reason>] for errors. *)

type response =
  | Data of string     (** [A<len>\n<data>\nC\n] *)
  | No_data            (** [C\n] *)
  | Not_found_key      (** [D\n] *)
  | Error_resp of string  (** [F <reason>\n] *)
  | Quit

val answer : Db.t -> string -> response
(** Evaluate one query line. *)

val render : response -> string
(** Wire encoding of a response (empty string for [Quit]). *)

val session : Db.t -> string list -> string
(** Run a whole query session: evaluate each line in order, stopping at
    [!q], concatenating rendered responses — handy for tests and the
    example tool. *)
