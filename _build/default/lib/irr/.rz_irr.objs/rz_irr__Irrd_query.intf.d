lib/irr/irrd_query.mli: Db
