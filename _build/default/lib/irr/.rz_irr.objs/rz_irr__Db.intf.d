lib/irr/db.mli: Rz_ir Rz_net Set
