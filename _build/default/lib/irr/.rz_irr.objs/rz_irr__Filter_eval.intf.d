lib/irr/filter_eval.mli: Db Rz_net Rz_policy Stdlib
