lib/irr/irrd_query.ml: Buffer Db List Printf Result Rz_ir Rz_net Rz_policy Rz_util String
