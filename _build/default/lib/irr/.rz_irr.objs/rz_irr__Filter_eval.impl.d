lib/irr/filter_eval.ml: Db List Rz_net Rz_policy
