lib/irr/db.ml: Hashtbl Int List Option Rz_ir Rz_net Rz_rpsl Rz_util Set
