(** Thompson-NFA evaluation of AS-path regexes — the paper's symbolic
    formulation made polynomial: AS tokens become the NFA alphabet, each
    observed ASN is mapped to the {e set} of tokens it matches, and the
    subset simulation advances over those sets. Equivalent accept/reject
    behaviour to {!Regex_match.matches} (a qcheck differential property
    enforces it) with worst-case cost O(path · states) regardless of the
    pattern — immune to the backtracking matcher's pathological cases.

    The same-pattern operators [~*]/[~+] need one extra register (the
    pinned ASN) and are handled by running the containing repetition as an
    anchored sub-simulation. *)

type t
(** A compiled matcher. *)

val compile : Regex_ast.t -> t

val matches : ?env:Regex_match.env -> t -> Rz_net.Asn.t array -> bool
(** Unanchored search, like {!Regex_match.matches}. *)

val state_count : t -> int
(** Number of NFA states (for tests and the bench report). *)
