lib/aspath/regex_parse.ml: List Printf Regex_ast Rz_net Rz_util String
