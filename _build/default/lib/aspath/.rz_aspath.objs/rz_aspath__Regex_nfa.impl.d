lib/aspath/regex_nfa.ml: Array Hashtbl List Queue Regex_ast Regex_match
