lib/aspath/regex_match.ml: Array List Printf Regex_ast Rz_net
