lib/aspath/regex_ast.mli: Rz_net
