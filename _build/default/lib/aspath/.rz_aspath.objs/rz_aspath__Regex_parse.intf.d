lib/aspath/regex_parse.mli: Regex_ast
