lib/aspath/regex_nfa.mli: Regex_ast Regex_match Rz_net
