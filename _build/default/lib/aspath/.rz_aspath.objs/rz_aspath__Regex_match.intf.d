lib/aspath/regex_match.mli: Regex_ast Rz_net
