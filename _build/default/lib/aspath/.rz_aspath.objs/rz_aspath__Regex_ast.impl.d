lib/aspath/regex_ast.ml: List Printf Rz_net String
