(** Parser for AS-path regular expressions. Input is the text between the
    [<] and [>] delimiters of an RPSL filter term. *)

val parse : string -> (Regex_ast.t, string) result
(** Parse a full regex. Whitespace separates adjacent terms (concatenation
    in RPSL AS-path regexes is written with spaces). *)
