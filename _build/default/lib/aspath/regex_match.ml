open Regex_ast

type env = {
  asn_in_set : string -> Rz_net.Asn.t -> bool;
  peer_as : Rz_net.Asn.t option;
}

let default_env = { asn_in_set = (fun _ _ -> false); peer_as = None }

let rec term_matches env term asn =
  match term with
  | Asn n -> n = asn
  | Asn_range (lo, hi) -> asn >= lo && asn <= hi
  | As_set name -> env.asn_in_set name asn
  | Peer_as -> (match env.peer_as with Some p -> p = asn | None -> false)
  | Wildcard -> true
  | Class (negated, terms) ->
    let inside = List.exists (fun t -> term_matches env t asn) terms in
    if negated then not inside else inside

(* Continuation-passing backtracking matcher. [k i] is invoked with every
   path index reachable after matching the node starting at [i]; it
   returns true to accept (which short-circuits the search). Star nodes
   only recurse when they consumed input, so zero-width loops terminate. *)
let matches ?(env = default_env) regex path =
  let n = Array.length path in
  let rec mtch node i (k : int -> bool) =
    match node with
    | Empty -> k i
    | Bol -> i = 0 && k i
    | Eol -> i = n && k i
    | Term t -> i < n && term_matches env t path.(i) && k (i + 1)
    | Seq (a, b) -> mtch a i (fun j -> mtch b j k)
    | Alt (a, b) -> mtch a i k || mtch b i k
    | Opt t -> mtch t i k || k i
    | Star t ->
      let rec loop i = k i || mtch t i (fun j -> j > i && loop j) in
      loop i
    | Plus t -> mtch t i (fun j -> mtch (Star t) j k)
    | Repeat (t, m, bound) ->
      let rec need count i =
        if count = 0 then optional bound i
        else mtch t i (fun j -> need (count - 1) j)
      and optional bound i =
        match bound with
        | None -> mtch (Star t) i k
        | Some total ->
          if total < m then false
          else
            let rec upto left i =
              k i || (left > 0 && mtch t i (fun j -> j > i && upto (left - 1) j))
            in
            upto (total - m) i
      in
      need m i
    | Tilde_star term ->
      (* zero or more consecutive occurrences of the SAME ASN, each
         matching the term *)
      k i
      ||
      (i < n && term_matches env term path.(i)
       &&
       let pinned = path.(i) in
       let rec run j = k j || (j < n && path.(j) = pinned && run (j + 1)) in
       run (i + 1))
    | Tilde_plus term ->
      i < n && term_matches env term path.(i)
      &&
      let pinned = path.(i) in
      let rec run j = k j || (j < n && path.(j) = pinned && run (j + 1)) in
      run (i + 1)
  in
  (* Unanchored search: try every start position. Anchors inside the regex
     still pin to the real ends. *)
  let accept _ = true in
  let rec from i = (i <= n && mtch regex i accept) || (i < n && from (i + 1)) in
  from 0

(* ------------------------------------------------------------------ *)
(* The paper's explicit symbol-string construction, for differential    *)
(* testing and the ablation bench.                                      *)
(* ------------------------------------------------------------------ *)

(* Collect the distinct AS tokens of the regex; each becomes a symbol. *)
let collect_terms regex =
  let acc = ref [] in
  let add t = if not (List.mem t !acc) then acc := t :: !acc in
  let rec go = function
    | Empty | Bol | Eol -> ()
    | Term t -> add t
    | Seq (a, b) | Alt (a, b) -> go a; go b
    | Star t | Plus t | Opt t | Repeat (t, _, _) -> go t
    | Tilde_star t | Tilde_plus t -> add t
  in
  go regex;
  List.rev !acc

let matches_product ?(env = default_env) ?(limit = 100_000) regex path =
  let terms = Array.of_list (collect_terms regex) in
  let nsym = Array.length terms in
  (* N_j: the set of symbols ASN j can match, plus a sentinel symbol
     [nsym] meaning "matches no token" so positions with an empty set
     still contribute exactly one symbol string. *)
  let symbol_sets =
    Array.map
      (fun asn ->
        let matching = ref [] in
        for s = nsym - 1 downto 0 do
          if term_matches env terms.(s) asn then matching := s :: !matching
        done;
        if !matching = [] then [ nsym ] else !matching)
      path
  in
  let total =
    Array.fold_left (fun acc set -> acc * List.length set) 1 symbol_sets
  in
  if total > limit then
    invalid_arg
      (Printf.sprintf "matches_product: %d symbol strings exceed limit %d" total limit);
  (* Match one symbol string against the symbolic regex: identical matcher,
     but a term matches symbol s iff the term IS terms.(s). *)
  let n = Array.length path in
  let rec mtch symbols node i k =
    match node with
    | Empty -> k i
    | Bol -> i = 0 && k i
    | Eol -> i = n && k i
    | Term t -> i < n && symbols.(i) < nsym && terms.(symbols.(i)) = t && k (i + 1)
    | Seq (a, b) -> mtch symbols a i (fun j -> mtch symbols b j k)
    | Alt (a, b) -> mtch symbols a i k || mtch symbols b i k
    | Opt t -> mtch symbols t i k || k i
    | Star t ->
      let rec loop i = k i || mtch symbols t i (fun j -> j > i && loop j) in
      loop i
    | Plus t -> mtch symbols t i (fun j -> mtch symbols (Star t) j k)
    | Repeat (t, m, bound) ->
      let rec need count i =
        if count = 0 then
          match bound with
          | None -> mtch symbols (Star t) i k
          | Some total ->
            let rec upto left i =
              k i || (left > 0 && mtch symbols t i (fun j -> j > i && upto (left - 1) j))
            in
            if total < m then false else upto (total - m) i
        else mtch symbols t i (fun j -> need (count - 1) j)
      in
      need m i
    | Tilde_star term ->
      k i
      ||
      (i < n && symbols.(i) < nsym && terms.(symbols.(i)) = term
       &&
       let pinned = path.(i) in
       let rec run j = k j || (j < n && path.(j) = pinned && run (j + 1)) in
       run (i + 1))
    | Tilde_plus term ->
      i < n && symbols.(i) < nsym && terms.(symbols.(i)) = term
      &&
      let pinned = path.(i) in
      let rec run j = k j || (j < n && path.(j) = pinned && run (j + 1)) in
      run (i + 1)
  in
  (* Enumerate the Cartesian product. *)
  let symbols = Array.make n 0 in
  let rec enumerate pos =
    if pos = n then begin
      let accept _ = true in
      let rec from i =
        (i <= n && mtch symbols regex i accept) || (i < n && from (i + 1))
      in
      from 0
    end
    else
      List.exists
        (fun s ->
          symbols.(pos) <- s;
          enumerate (pos + 1))
        symbol_sets.(pos)
  in
  if n = 0 then
    let accept _ = true in
    mtch [||] regex 0 accept
  else enumerate 0
