(** AS-path regex matching.

    The matcher is the paper's "symbolic" approach (Appendix B) realised as
    a backtracking simulation: instead of materializing the Cartesian
    product of per-position symbol sets, it asks, per path position,
    whether the concrete ASN matches each AS token — equivalent
    accept/reject behaviour in polynomial time. {!matches_product}
    implements the paper's explicit product construction literally and is
    kept for differential testing and the ablation benchmark. *)

type env = {
  asn_in_set : string -> Rz_net.Asn.t -> bool;
      (** as-set membership test with the set name as written in the regex;
          resolution (recursive flattening) is the caller's concern. *)
  peer_as : Rz_net.Asn.t option;
      (** binding for the [PeerAS] keyword, per BGP session. *)
}

val default_env : env
(** No sets resolvable, no PeerAS bound — set terms match nothing. *)

val matches : ?env:env -> Regex_ast.t -> Rz_net.Asn.t array -> bool
(** [matches regex path] — unanchored search semantics: the regex may
    match any substring of the path unless anchored with [^] / [$].
    [path] is in BGP order: receiving neighbor first, origin last. *)

val matches_product : ?env:env -> ?limit:int -> Regex_ast.t -> Rz_net.Asn.t array -> bool
(** The paper's formulation: build all symbol strings from the Cartesian
    product of per-position symbol sets and test each against the symbolic
    regex. Exponential; [limit] (default [100_000]) caps the number of
    symbol strings, raising [Invalid_argument] beyond it. Only used by
    tests and the ablation bench. *)

val term_matches : env -> Regex_ast.term -> Rz_net.Asn.t -> bool
(** Whether one AS token matches one concrete ASN. *)
