open Regex_ast

type token =
  | T_caret
  | T_dollar
  | T_lparen
  | T_rparen
  | T_lbracket of bool (* negated? *)
  | T_rbracket
  | T_star
  | T_plus
  | T_question
  | T_tilde
  | T_pipe
  | T_lbrace
  | T_rbrace
  | T_comma
  | T_dash
  | T_dot
  | T_int of int          (* inside {m,n} *)
  | T_name of string      (* ASN or as-set name or PeerAS *)

exception Err of string

let tokenize input =
  let n = String.length input in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let is_name_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = ':'
    (* NB: '-' is tokenized separately so ASN ranges work; multi-part
       as-set names containing '-' are re-glued by the parser. *)
  in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    (match c with
     | ' ' | '\t' | '\n' | '\r' -> incr i
     | '^' ->
       (* '^' right after '[' negates the class; otherwise it is an anchor. *)
       (match !toks with
        | T_lbracket false :: rest -> toks := T_lbracket true :: rest
        | _ -> push T_caret);
       incr i
     | '$' -> push T_dollar; incr i
     | '(' -> push T_lparen; incr i
     | ')' -> push T_rparen; incr i
     | '[' -> push (T_lbracket false); incr i
     | ']' -> push T_rbracket; incr i
     | '*' -> push T_star; incr i
     | '+' -> push T_plus; incr i
     | '?' -> push T_question; incr i
     | '~' -> push T_tilde; incr i
     | '|' -> push T_pipe; incr i
     | '{' -> push T_lbrace; incr i
     | '}' -> push T_rbrace; incr i
     | ',' -> push T_comma; incr i
     | '-' -> push T_dash; incr i
     | '.' -> push T_dot; incr i
     | c when is_name_char c ->
       let start = !i in
       while !i < n && is_name_char input.[!i] do incr i done;
       let word = String.sub input start (!i - start) in
       (match int_of_string_opt word with
        | Some v -> push (T_int v)
        | None -> push (T_name word))
     | c -> raise (Err (Printf.sprintf "unexpected character %C in AS-path regex" c)));
  done;
  List.rev !toks

(* Re-glue name-dash-name runs into single hyphenated names when they do
   not form an ASN range (as-set names like AS-FOO-BAR tokenize as
   T_name "AS" :: T_dash :: T_name "FOO" :: ...). An ASN range is exactly
   name(ASN) dash name(ASN). *)
let is_asn_name w =
  match Rz_net.Asn.of_string w with
  | Ok _ -> Rz_util.Strings.starts_with_ci ~prefix:"AS" w
  | Error _ -> false

let reglue tokens =
  let rec go acc = function
    | T_name a :: T_dash :: T_name b :: rest when is_asn_name a && is_asn_name b ->
      (* genuine ASN range *)
      go (T_name b :: T_dash :: T_name a :: acc) rest
    | T_name a :: T_dash :: T_name b :: rest ->
      (* hyphenated name: re-glue and retry (handles AS-FOO-BAR chains) *)
      go acc (T_name (a ^ "-" ^ b) :: rest)
    | T_name a :: T_dash :: T_int b :: rest ->
      go acc (T_name (a ^ "-" ^ string_of_int b) :: rest)
    | tok :: rest -> go (tok :: acc) rest
    | [] -> List.rev acc
  in
  go [] tokens

let parse input =
  match
    let tokens = ref (reglue (tokenize input)) in
    let peek () = match !tokens with [] -> None | t :: _ -> Some t in
    let advance () = match !tokens with [] -> () | _ :: rest -> tokens := rest in
    let expect t msg =
      match peek () with
      | Some x when x = t -> advance ()
      | _ -> raise (Err msg)
    in
    let name_to_term w =
      if Rz_util.Strings.equal_ci w "PeerAS" then Peer_as
      else
        match Rz_net.Asn.of_string w with
        | Ok n when Rz_util.Strings.starts_with_ci ~prefix:"AS" w -> Asn n
        | _ -> As_set w
    in
    (* One term inside or outside a class. *)
    let parse_class_term () =
      match peek () with
      | Some T_dot -> advance (); Wildcard
      | Some (T_name w) ->
        advance ();
        (match peek () with
         | Some T_dash when is_asn_name w ->
           advance ();
           (match peek () with
            | Some (T_name w2) when is_asn_name w2 ->
              advance ();
              Asn_range (Rz_net.Asn.of_string_exn w, Rz_net.Asn.of_string_exn w2)
            | _ -> raise (Err "expected ASN after - in range"))
         | _ -> name_to_term w)
      | _ -> raise (Err "expected a term inside character class")
    in
    let parse_class negated =
      let rec items acc =
        match peek () with
        | Some T_rbracket -> advance (); List.rev acc
        | Some _ -> items (parse_class_term () :: acc)
        | None -> raise (Err "unterminated character class")
      in
      Class (negated, items [])
    in
    let rec parse_alt () =
      let left = parse_seq () in
      match peek () with
      | Some T_pipe ->
        advance ();
        Alt (left, parse_alt ())
      | _ -> left
    and parse_seq () =
      let rec go acc =
        match peek () with
        | None | Some (T_rparen | T_pipe) -> acc
        | Some _ ->
          let atom = parse_postfixed () in
          go (if acc = Empty then atom else Seq (acc, atom))
      in
      go Empty
    and parse_postfixed () =
      let atom = parse_atom () in
      let rec apply node =
        match peek () with
        | Some T_star -> advance (); apply (Star node)
        | Some T_plus -> advance (); apply (Plus node)
        | Some T_question -> advance (); apply (Opt node)
        | Some T_lbrace ->
          advance ();
          let m =
            match peek () with
            | Some (T_int v) -> advance (); v
            | _ -> raise (Err "expected integer in {m,n}")
          in
          let n =
            match peek () with
            | Some T_comma ->
              advance ();
              (match peek () with
               | Some (T_int v) -> advance (); Some v
               | _ -> None)
            | _ -> Some m
          in
          expect T_rbrace "expected } in repetition";
          apply (Repeat (node, m, n))
        | Some T_tilde ->
          advance ();
          let term =
            match node with
            | Term t -> t
            | _ -> raise (Err "~ operator requires a single AS term")
          in
          (match peek () with
           | Some T_star -> advance (); apply (Tilde_star term)
           | Some T_plus -> advance (); apply (Tilde_plus term)
           | _ -> raise (Err "expected * or + after ~"))
        | _ -> node
      in
      apply atom
    and parse_atom () =
      match peek () with
      | Some T_caret -> advance (); Bol
      | Some T_dollar -> advance (); Eol
      | Some T_dot -> advance (); Term Wildcard
      | Some (T_name w) ->
        advance ();
        (match peek () with
         | Some T_dash when is_asn_name w ->
           advance ();
           (match peek () with
            | Some (T_name w2) when is_asn_name w2 ->
              advance ();
              Term (Asn_range (Rz_net.Asn.of_string_exn w, Rz_net.Asn.of_string_exn w2))
            | _ -> raise (Err "expected ASN after - in range"))
         | _ -> Term (name_to_term w))
      | Some (T_int v) ->
        (* A bare number is a plain ASN written without the AS prefix. *)
        advance ();
        Term (Asn v)
      | Some (T_lbracket negated) ->
        advance ();
        Term (parse_class negated)
      | Some T_lparen ->
        advance ();
        let inner = parse_alt () in
        expect T_rparen "expected )";
        inner
      | Some tok ->
        raise
          (Err
             (Printf.sprintf "unexpected token in AS-path regex (%s)"
                (match tok with
                 | T_rparen -> ")"
                 | T_rbracket -> "]"
                 | T_rbrace -> "}"
                 | T_comma -> ","
                 | T_dash -> "-"
                 | _ -> "?")))
      | None -> raise (Err "empty AS-path regex atom")
    in
    let ast = parse_alt () in
    if !tokens <> [] then raise (Err "trailing tokens in AS-path regex");
    ast
  with
  | ast -> Ok ast
  | exception Err msg -> Error msg
