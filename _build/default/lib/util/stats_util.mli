(** Descriptive statistics helpers used by the characterization and the
    benchmark harness (CCDFs, percentiles, histogram buckets). *)

val ccdf : int list -> (int * float) list
(** [ccdf samples] returns, for each distinct value [v] in ascending order,
    the fraction of samples that are [>= v] (complementary cumulative
    distribution, matching Figure 1's axes). *)

val ccdf_at : int list -> int list -> (int * float) list
(** [ccdf_at samples xs] evaluates the CCDF at the given thresholds:
    fraction of samples [>= x] for each [x]. *)

val percentile : float -> int list -> int
(** [percentile p samples] with [p] in [0,100]; nearest-rank method.
    Raises [Invalid_argument] on an empty list. *)

val mean : int list -> float

val fraction : ('a -> bool) -> 'a list -> float
(** Fraction of elements satisfying the predicate (0 on empty input). *)

val bucketize : edges:int list -> int list -> (string * int) list
(** Histogram with right-open buckets labelled ["[lo,hi)"], final bucket
    open-ended. *)
