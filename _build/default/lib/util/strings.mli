(** Small string helpers shared across the code base. *)

val lowercase : string -> string
(** ASCII lowercase. *)

val uppercase : string -> string
(** ASCII uppercase. *)

val strip : string -> string
(** Trim ASCII whitespace from both ends. *)

val split_on_string : sep:string -> string -> string list
(** Split on a multi-character separator (no regex). [sep] must be
    non-empty. *)

val starts_with_ci : prefix:string -> string -> bool
(** Case-insensitive [String.starts_with]. *)

val equal_ci : string -> string -> bool
(** Case-insensitive equality. *)

val is_blank : string -> bool
(** True when the string only contains whitespace. *)

val split_words : string -> string list
(** Split on runs of whitespace, dropping empties. *)

val chop_comment : char -> string -> string
(** [chop_comment '#' s] drops everything from the first occurrence of the
    comment character. *)

val concat_map_lines : (string -> string option) -> string -> string
(** Map over lines, dropping [None] results, rejoining with ['\n']. *)
