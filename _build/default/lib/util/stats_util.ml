let ccdf samples =
  let n = List.length samples in
  if n = 0 then []
  else begin
    let sorted = List.sort compare samples in
    let fn = float_of_int n in
    (* For each distinct value v, count samples >= v. *)
    let distinct = List.sort_uniq compare sorted in
    let arr = Array.of_list sorted in
    let count_ge v =
      (* binary search for first index with arr.(i) >= v *)
      let lo = ref 0 and hi = ref (Array.length arr) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if arr.(mid) < v then lo := mid + 1 else hi := mid
      done;
      Array.length arr - !lo
    in
    List.map (fun v -> (v, float_of_int (count_ge v) /. fn)) distinct
  end

let ccdf_at samples xs =
  let n = List.length samples in
  let fn = if n = 0 then 1.0 else float_of_int n in
  let sorted = Array.of_list (List.sort compare samples) in
  let count_ge v =
    let lo = ref 0 and hi = ref (Array.length sorted) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if sorted.(mid) < v then lo := mid + 1 else hi := mid
    done;
    Array.length sorted - !lo
  in
  List.map (fun x -> (x, float_of_int (count_ge x) /. fn)) xs

let percentile p samples =
  match List.sort compare samples with
  | [] -> invalid_arg "Stats_util.percentile: empty"
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    List.nth sorted (rank - 1)

let mean samples =
  match samples with
  | [] -> 0.0
  | _ ->
    float_of_int (List.fold_left ( + ) 0 samples) /. float_of_int (List.length samples)

let fraction pred l =
  match l with
  | [] -> 0.0
  | _ ->
    float_of_int (List.length (List.filter pred l)) /. float_of_int (List.length l)

let bucketize ~edges samples =
  let rec label = function
    | lo :: (hi :: _ as rest) ->
      (Printf.sprintf "[%d,%d)" lo hi, fun v -> v >= lo && v < hi) :: label rest
    | [ lo ] -> [ (Printf.sprintf "[%d,inf)" lo, fun v -> v >= lo) ]
    | [] -> []
  in
  let buckets = label edges in
  List.map
    (fun (name, pred) -> (name, List.length (List.filter pred samples)))
    buckets
