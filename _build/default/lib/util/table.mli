(** Plain-text aligned table rendering for the benchmark harness output
    (used to print the paper's tables and figure series as rows). *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] produces an ASCII table with a header rule.
    [align] defaults to left for the first column and right elsewhere. *)

val print : ?align:align list -> header:string list -> string list list -> unit

val pct : float -> string
(** Format a fraction as a percentage with one decimal, e.g. [0.532] ->
    ["53.2%"]. *)

val commas : int -> string
(** Thousands-separated integer, e.g. [78701] -> ["78,701"]. *)
