(** Deterministic SplitMix64 pseudo-random number generator.

    Used everywhere randomness is needed (topology generation, synthetic IRR
    generation, workload sampling) so that the whole evaluation pipeline is
    reproducible from a single integer seed, independent of the OCaml stdlib
    [Random] implementation. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t k arr] returns [k] distinct elements (or all if
    [k >= length]). *)

val weighted : t -> (float * 'a) list -> 'a
(** [weighted t choices] picks proportionally to the weights. Weights must
    be non-negative with a positive sum. *)

val geometric : t -> float -> int
(** [geometric t p] counts Bernoulli(p) failures before the first success;
    mean [(1-p)/p]. Used for heavy-ish tailed counts. *)

val pareto_int : t -> alpha:float -> xmin:int -> max:int -> int
(** Bounded discrete Pareto sample; used for degree / rule-count tails. *)
