lib/util/strings.ml: List String
