lib/util/stats_util.mli:
