lib/util/table.mli:
