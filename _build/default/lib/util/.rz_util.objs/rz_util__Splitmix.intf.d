lib/util/splitmix.mli:
