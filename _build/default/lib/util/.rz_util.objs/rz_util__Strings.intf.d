lib/util/strings.mli:
