lib/util/stats_util.ml: Array List Printf
