type align = Left | Right

let widths header rows =
  let ncols = List.length header in
  let w = Array.make ncols 0 in
  let feed row =
    List.iteri
      (fun i cell -> if i < ncols && String.length cell > w.(i) then w.(i) <- String.length cell)
      row
  in
  feed header;
  List.iter feed rows;
  w

let pad align width s =
  let fill = width - String.length s in
  if fill <= 0 then s
  else
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> Array.of_list a
    | _ -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let w = widths header rows in
  let line row =
    String.concat "  "
      (List.mapi (fun i cell -> pad aligns.(i) w.(i) cell) row)
  in
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun n -> String.make n '-') w))
  in
  String.concat "\n" (line header :: rule :: List.map line rows)

let print ?align ~header rows =
  print_endline (render ?align ~header rows)

let pct f = Printf.sprintf "%.1f%%" (100.0 *. f)

let commas n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + len / 3) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
