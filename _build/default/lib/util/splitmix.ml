type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound <= 0";
  (* Take the top bits; modulo bias is negligible for our bounds (< 2^40). *)
  let raw = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  raw mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Splitmix.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t =
  let raw = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  raw /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L
let chance t p = float t < p
let choose t arr = arr.(int t (Array.length arr))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Splitmix.choose_list: empty"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k arr =
  let n = Array.length arr in
  if k >= n then Array.copy arr
  else begin
    let copy = Array.copy arr in
    shuffle t copy;
    Array.sub copy 0 k
  end

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 choices in
  if total <= 0.0 then invalid_arg "Splitmix.weighted: non-positive total weight";
  let target = float t *. total in
  let rec pick acc = function
    | [] -> invalid_arg "Splitmix.weighted: empty"
    | [ (_, x) ] -> x
    | (w, x) :: rest -> if acc +. w > target then x else pick (acc +. w) rest
  in
  pick 0.0 choices

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Splitmix.geometric";
  let u = Stdlib.max 1e-12 (float t) in
  int_of_float (Float.of_int 0 +. floor (log u /. log (1.0 -. p)))

let pareto_int t ~alpha ~xmin ~max =
  let u = Stdlib.max 1e-12 (float t) in
  let x = Float.of_int xmin /. (u ** (1.0 /. alpha)) in
  let x = int_of_float x in
  if x > max then max else if x < xmin then xmin else x
