module Asn_set = Set.Make (Int)

type t = { attestations : (Rz_net.Asn.t, Asn_set.t) Hashtbl.t }

let create () = { attestations = Hashtbl.create 256 }

let attest t ~customer ~providers =
  let existing =
    Option.value ~default:Asn_set.empty (Hashtbl.find_opt t.attestations customer)
  in
  Hashtbl.replace t.attestations customer
    (List.fold_left (fun acc p -> Asn_set.add p acc) existing providers)

let has_aspa t asn = Hashtbl.mem t.attestations asn
let size t = Hashtbl.length t.attestations

type auth =
  | Provider
  | Not_provider
  | No_attestation

let authorized t ~customer ~provider =
  match Hashtbl.find_opt t.attestations customer with
  | None -> No_attestation
  | Some providers -> if Asn_set.mem provider providers then Provider else Not_provider

type result =
  | Valid
  | Invalid
  | Unknown

let result_to_string = function
  | Valid -> "valid"
  | Invalid -> "invalid"
  | Unknown -> "unknown"

(* Path verification over a(1..n) = origin .. collector peer.

   up(i)   = authorized(a_i   -> a_i+1)  — can the path climb at i?
   down(i) = authorized(a_i+1 -> a_i)    — can the path descend at i?

   max_up_ramp:  largest U with up(i) <> Not_provider for all i < U — the
   furthest the path can plausibly climb from the origin.
   max_down_ramp: symmetric from the collector side.

   If the two ramps meet (possibly with one lateral hop at the apex) the
   path is plausibly valley-free; when every hop in the winning
   decomposition is affirmatively attested the result is Valid, otherwise
   Unknown. If the ramps cannot meet even with one apex hop, some hop is
   provably unauthorized in both directions: Invalid. *)
let verify_path t path_wire =
  let n = Array.length path_wire in
  if n <= 1 then Valid
  else begin
    let a = Array.init n (fun i -> path_wire.(n - 1 - i)) in
    let up i = authorized t ~customer:a.(i) ~provider:a.(i + 1) in
    let down i = authorized t ~customer:a.(i + 1) ~provider:a.(i) in
    let pairs = n - 1 in
    (* ramp lengths counted in pairs *)
    let max_up = ref 0 in
    (try
       for i = 0 to pairs - 1 do
         if up i = Not_provider then raise Exit;
         incr max_up
       done
     with Exit -> ());
    let max_down = ref 0 in
    (try
       for i = pairs - 1 downto 0 do
         if down i = Not_provider then raise Exit;
         incr max_down
       done
     with Exit -> ());
    (* ramps may overlap; one un-attested apex pair (the peer link) is
       tolerated between them *)
    if !max_up + !max_down < pairs - 1 then Invalid
    else begin
      (* affirmative Valid: every pair provably up until an apex, then
         provably down, with at most one apex pair in between *)
      let strict_up = ref 0 in
      (try
         for i = 0 to pairs - 1 do
           if up i <> Provider then raise Exit;
           incr strict_up
         done
       with Exit -> ());
      let strict_down = ref 0 in
      (try
         for i = pairs - 1 downto 0 do
           if down i <> Provider then raise Exit;
           incr strict_down
         done
       with Exit -> ());
      if !strict_up + !strict_down >= pairs - 1 then Valid else Unknown
    end
  end

let of_topology ?(seed = 177) ~adoption (topo : Rz_topology.Gen.t) =
  let rng = Rz_util.Splitmix.create seed in
  let t = create () in
  Array.iter
    (fun asn ->
      let providers = Rz_asrel.Rel_db.providers topo.rels asn in
      if providers <> [] && Rz_util.Splitmix.chance rng adoption then
        attest t ~customer:asn ~providers)
    topo.ases;
  t
