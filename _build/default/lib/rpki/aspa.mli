(** Autonomous System Provider Authorization (the ASPA draft the paper
    cites as [10]) — each participating customer AS attests its complete
    set of providers; validators use the attestations to check that an
    AS_PATH is plausibly valley-free.

    Path verification here is the draft's algorithm in simplified form,
    over the path as observed at a route collector (origin to collector
    peer): the path must climb provider edges to a single apex (allowing
    one lateral peer hop) and then descend. A hop is {e provably not
    authorized} when the customer published an ASPA that omits the
    alleged provider; such evidence makes the path [Invalid]. With no
    contradicting evidence but incomplete attestations, the result is
    [Unknown]. *)

type t

val create : unit -> t

val attest : t -> customer:Rz_net.Asn.t -> providers:Rz_net.Asn.t list -> unit
(** Register (or extend) the customer's provider attestation. *)

val has_aspa : t -> Rz_net.Asn.t -> bool
val size : t -> int

(** Pairwise authorization evidence. *)
type auth =
  | Provider            (** attested: the second AS is a provider of the first *)
  | Not_provider        (** the first AS has an ASPA that omits the second *)
  | No_attestation

val authorized : t -> customer:Rz_net.Asn.t -> provider:Rz_net.Asn.t -> auth

type result =
  | Valid
  | Invalid
  | Unknown

val verify_path : t -> Rz_net.Asn.t array -> result
(** [verify_path t path] with [path] in wire order (collector peer first,
    origin last), prepending already removed. *)

val result_to_string : result -> string

val of_topology :
  ?seed:int ->
  adoption:float ->
  Rz_topology.Gen.t ->
  t
(** Each AS with at least one provider publishes its (complete) ASPA with
    probability [adoption]. *)
