type roa = {
  prefix : Rz_net.Prefix.t;
  max_length : int;
  origin : Rz_net.Asn.t;
}

type t = { trie : roa Rz_net.Prefix_trie.t }

let create () = { trie = Rz_net.Prefix_trie.create () }
let add t roa = Rz_net.Prefix_trie.add t.trie roa.prefix roa
let size t = Rz_net.Prefix_trie.length t.trie

type validity =
  | Valid
  | Invalid
  | Not_found

let validity_to_string = function
  | Valid -> "valid"
  | Invalid -> "invalid"
  | Not_found -> "not-found"

let validate t prefix origin =
  let covering = Rz_net.Prefix_trie.covering t.trie prefix in
  if covering = [] then Not_found
  else if
    List.exists
      (fun (_, roa) -> roa.origin = origin && prefix.Rz_net.Prefix.len <= roa.max_length)
      covering
  then Valid
  else Invalid

let of_topology ?(seed = 99) ~adoption (topo : Rz_topology.Gen.t) =
  let rng = Rz_util.Splitmix.create seed in
  let t = create () in
  Array.iter
    (fun asn ->
      if Rz_util.Splitmix.chance rng adoption then
        List.iter
          (fun prefix ->
            (* operators commonly sign maxLength = the announced length *)
            add t { prefix; max_length = prefix.Rz_net.Prefix.len; origin = asn })
          (Rz_topology.Gen.prefixes_of topo asn))
    topo.ases;
  t
