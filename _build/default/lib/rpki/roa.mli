(** Route Origin Authorizations and Route Origin Validation (RFC 6811) —
    the deployed BGP-security baseline the paper compares the RPSL against
    ("Our analysis ... follows this approach using the RPSL instead",
    Section 6). A ROA authorizes an AS to originate a prefix up to a
    maximum length; ROV classifies a (prefix, origin) pair against the
    covering ROAs. *)

type roa = {
  prefix : Rz_net.Prefix.t;
  max_length : int;   (** longest announcement the ROA authorizes *)
  origin : Rz_net.Asn.t;
}

type t

val create : unit -> t
val add : t -> roa -> unit
val size : t -> int

type validity =
  | Valid       (** a covering ROA authorizes this origin at this length *)
  | Invalid     (** covering ROAs exist but none authorizes it *)
  | Not_found   (** no covering ROA — the prefix is outside RPKI coverage *)

val validate : t -> Rz_net.Prefix.t -> Rz_net.Asn.t -> validity
(** RFC 6811 semantics: Valid if any covering ROA matches origin and
    [len <= max_length]; Invalid when covering ROAs exist but none
    matches; NotFound otherwise. *)

val validity_to_string : validity -> string

val of_topology :
  ?seed:int ->
  adoption:float ->
  Rz_topology.Gen.t ->
  t
(** Synthesize the ROA table the topology's ground truth implies: each AS
    signs ROAs for its originated prefixes with probability [adoption]
    (partial deployment — the situation RPKI measurement studies
    quantify). Deterministic for a seed. *)
