lib/rpki/aspa.ml: Array Hashtbl Int List Option Rz_asrel Rz_net Rz_topology Rz_util Set
