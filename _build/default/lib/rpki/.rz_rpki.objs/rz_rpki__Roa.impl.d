lib/rpki/roa.ml: Array List Rz_net Rz_topology Rz_util
