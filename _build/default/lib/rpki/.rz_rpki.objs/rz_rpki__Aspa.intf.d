lib/rpki/aspa.mli: Rz_net Rz_topology
