lib/rpki/roa.mli: Rz_net Rz_topology
