(** Snapshot diffing — the paper's future-work item "tracking the
    evolution of RPSL policy usage over time". IRRs publish no history, so
    the paper's methodology (and prior work it cites) is periodic
    scraping; this module compares two scraped snapshots. *)

type rule_change = {
  asn : Rz_net.Asn.t;
  before_rules : int;
  after_rules : int;
}

type t = {
  aut_nums_added : Rz_net.Asn.t list;
  aut_nums_removed : Rz_net.Asn.t list;
  rules_changed : rule_change list;
      (** aut-nums present in both snapshots whose rendered rule sets
          differ *)
  as_sets_added : string list;
  as_sets_removed : string list;
  as_sets_changed : string list;  (** same name, different member list *)
  route_sets_added : string list;
  route_sets_removed : string list;
  routes_added : int;             (** new (prefix, origin) pairs *)
  routes_removed : int;
}

val diff : before:Rz_ir.Ir.t -> after:Rz_ir.Ir.t -> t

val is_empty : t -> bool

val summary : t -> string
(** One-paragraph human-readable change summary. *)
