(** Classify ASes by their RPSL usage style — the paper's future-work item
    "classifying ASes by RPSL usage". Categories mirror the usage patterns
    Section 4 identifies; classification is purely syntactic, from the
    AS's parsed objects. *)

type style =
  | Unregistered       (** no aut-num in any IRR *)
  | Silent             (** aut-num with zero rules *)
  | Open_policy        (** an AS-ANY / ANY rule in each direction — exchange-style openness *)
  | Provider_only      (** rules reference only its upstreams (needs [rels]) *)
  | Simple             (** per-neighbor rules, all BGPq4-compatible *)
  | Expressive         (** uses regex, communities, composite filters, or structured policies *)

type profile = {
  asn : Rz_net.Asn.t;
  style : style;
  n_rules : int;
  n_neighbors_declared : int;  (** distinct ASNs referenced in peerings *)
  uses_sets : bool;            (** references as-/route-sets in filters *)
  multiprotocol : bool;        (** has mp- rules *)
}

val style_to_string : style -> string

val classify_aut_num :
  ?rels:Rz_asrel.Rel_db.t -> Rz_ir.Ir.aut_num -> profile

val classify_all :
  ?rels:Rz_asrel.Rel_db.t ->
  observed:Rz_net.Asn.t list ->
  Rz_irr.Db.t ->
  profile list
(** Classify every AS in [observed] (e.g. all ASes seen in BGP paths),
    producing [Unregistered] profiles for those without aut-nums. *)

val histogram : profile list -> (style * int) list
(** Count per style, in declaration order. *)
