(** AS-relationship inference from RPSL policies — the paper's closing
    suggestion that "RPSL information can also be applied to longstanding
    modeling challenges such as AS-relationship inference" (Siganos &
    Faloutsos pioneered this on Nemecis; we reconstruct it on the IR).

    The signal is rule asymmetry on each declared link:
    - [import: from P accept ANY] with [export: to P announce <own/cone>]
      marks P as a {e provider} of the declaring AS;
    - [export: to C announce ANY] with a selective import from C marks C
      as a {e customer};
    - selective rules in both directions mark a {e peer}. *)

type evidence = {
  asn : Rz_net.Asn.t;              (** the declaring AS *)
  neighbor : Rz_net.Asn.t;
  accepts_any : bool;              (** import from the neighbor accepts ANY *)
  announces_any : bool;            (** export to the neighbor announces ANY *)
}

val link_evidence : Rz_irr.Db.t -> evidence list
(** One record per (declaring AS, neighbor ASN referenced in its rules). *)

val infer : Rz_irr.Db.t -> Rz_asrel.Rel_db.t
(** Build a relationship database from the evidence. A link present from
    both sides uses the stronger signal; conflicting one-sided evidence
    falls back to peer. *)

type accuracy = {
  inferred : int;         (** links with an inferred relationship *)
  checked : int;          (** of those, links present in the ground truth *)
  correct : int;          (** matching relationship and orientation *)
}

val accuracy : truth:Rz_asrel.Rel_db.t -> Rz_asrel.Rel_db.t -> accuracy
(** Compare inferred relationships against ground truth. *)
