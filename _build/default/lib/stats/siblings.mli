(** Sibling-AS detection — the paper's future-work pointer "identification
    of sibling ASes" — using the classic maintainer heuristic (as in
    as2org-style pipelines): aut-nums administered by the same [mntner]
    likely belong to one organization. *)

type cluster = {
  maintainers : string list;  (** the shared maintainer handles *)
  asns : Rz_net.Asn.t list;   (** sorted member ASNs, at least two *)
}

val clusters : Rz_irr.Db.t -> cluster list
(** Connected components of the AS–maintainer bipartite graph with at
    least two ASes, sorted by descending size. ASes with no [mnt-by] are
    ignored. *)

val siblings_of : Rz_irr.Db.t -> Rz_net.Asn.t -> Rz_net.Asn.t list
(** Other ASes in the same cluster ([] when none). *)
