module Ir = Rz_ir.Ir

type cluster = {
  maintainers : string list;
  asns : Rz_net.Asn.t list;
}

(* Union-find over ASNs, linked through shared maintainer handles. *)
let clusters db =
  let ir = Rz_irr.Db.ir db in
  let parent : (Rz_net.Asn.t, Rz_net.Asn.t) Hashtbl.t = Hashtbl.create 256 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | Some p when p <> x ->
      let root = find p in
      Hashtbl.replace parent x root;
      root
    | _ ->
      if not (Hashtbl.mem parent x) then Hashtbl.replace parent x x;
      x
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  let by_mnt : (string, Rz_net.Asn.t list) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.iter
    (fun asn (an : Ir.aut_num) ->
      List.iter
        (fun mnt ->
          let key = Rz_util.Strings.uppercase mnt in
          let existing = Option.value ~default:[] (Hashtbl.find_opt by_mnt key) in
          Hashtbl.replace by_mnt key (asn :: existing))
        an.mnt_by)
    ir.aut_nums;
  Hashtbl.iter
    (fun _ asns ->
      match asns with
      | first :: rest -> List.iter (union first) rest
      | [] -> ())
    by_mnt;
  (* materialize components *)
  let members : (Rz_net.Asn.t, Rz_net.Asn.t list) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun asn _ ->
      let root = find asn in
      let existing = Option.value ~default:[] (Hashtbl.find_opt members root) in
      Hashtbl.replace members root (asn :: existing))
    parent;
  let mnt_of : (Rz_net.Asn.t, string list) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.iter
    (fun asn (an : Ir.aut_num) ->
      Hashtbl.replace mnt_of asn (List.map Rz_util.Strings.uppercase an.mnt_by))
    ir.aut_nums;
  Hashtbl.fold
    (fun _ asns acc ->
      if List.length asns < 2 then acc
      else begin
        let asns = List.sort_uniq compare asns in
        let maintainers =
          List.concat_map
            (fun asn -> Option.value ~default:[] (Hashtbl.find_opt mnt_of asn))
            asns
          |> List.sort_uniq compare
        in
        { maintainers; asns } :: acc
      end)
    members []
  |> List.sort (fun a b -> compare (List.length b.asns) (List.length a.asns))

let siblings_of db asn =
  match List.find_opt (fun c -> List.mem asn c.asns) (clusters db) with
  | Some cluster -> List.filter (fun a -> a <> asn) cluster.asns
  | None -> []
