module Ast = Rz_policy.Ast
module Ir = Rz_ir.Ir
module Rel_db = Rz_asrel.Rel_db

type evidence = {
  asn : Rz_net.Asn.t;
  neighbor : Rz_net.Asn.t;
  accepts_any : bool;
  announces_any : bool;
}

(* Plain single-ASN peerings only: composite peerings don't identify one
   neighbor. *)
let factor_neighbors (factor : Ast.factor) =
  List.filter_map
    (fun (pa : Ast.peering_action) ->
      match pa.peering with
      | Ast.Peering_spec { as_expr = Ast.Asn n; _ } -> Some n
      | _ -> None)
    factor.peerings

let rec filter_is_any = function
  | Ast.Any -> true
  | Ast.And_f (a, b) -> filter_is_any a && filter_is_any b
  | Ast.Or_f (a, b) -> filter_is_any a || filter_is_any b
  | _ -> false

let link_evidence db =
  let ir = Rz_irr.Db.ir db in
  let table : (Rz_net.Asn.t * Rz_net.Asn.t, evidence) Hashtbl.t = Hashtbl.create 512 in
  let note asn neighbor ~import ~any =
    let key = (asn, neighbor) in
    let existing =
      Option.value
        ~default:{ asn; neighbor; accepts_any = false; announces_any = false }
        (Hashtbl.find_opt table key)
    in
    let updated =
      if import then { existing with accepts_any = existing.accepts_any || any }
      else { existing with announces_any = existing.announces_any || any }
    in
    Hashtbl.replace table key updated
  in
  Hashtbl.iter
    (fun asn (an : Ir.aut_num) ->
      let scan ~import (rule : Ast.rule) =
        List.iter
          (fun (term : Ast.term) ->
            List.iter
              (fun (factor : Ast.factor) ->
                let any = filter_is_any factor.filter in
                List.iter
                  (fun neighbor -> note asn neighbor ~import ~any)
                  (factor_neighbors factor))
              term.factors)
          (Ast.expr_terms rule.expr)
      in
      List.iter (scan ~import:true) an.imports;
      List.iter (scan ~import:false) an.exports)
    ir.aut_nums;
  Hashtbl.fold (fun _ e acc -> e :: acc) table []

(* One-sided classification of the declaring AS's view of the link. *)
type view = Sees_provider | Sees_customer | Sees_peer

let classify (e : evidence) =
  match (e.accepts_any, e.announces_any) with
  | true, false -> Some Sees_provider   (* accept everything, send own routes *)
  | false, true -> Some Sees_customer   (* send everything, accept their routes *)
  | false, false -> Some Sees_peer      (* selective both ways *)
  | true, true -> None                  (* open policy: no signal *)

let infer db =
  let rels = Rel_db.create () in
  let views : (Rz_net.Asn.t * Rz_net.Asn.t, view) Hashtbl.t = Hashtbl.create 512 in
  List.iter
    (fun e ->
      match classify e with
      | Some v -> Hashtbl.replace views (e.asn, e.neighbor) v
      | None -> ())
    (link_evidence db);
  let decided = Hashtbl.create 512 in
  Hashtbl.iter
    (fun (a, b) view_ab ->
      let key = if a < b then (a, b) else (b, a) in
      if not (Hashtbl.mem decided key) then begin
        Hashtbl.replace decided key ();
        let view_ba = Hashtbl.find_opt views (b, a) in
        let relationship =
          match (view_ab, view_ba) with
          | Sees_provider, (Some Sees_customer | None) -> `P2c (b, a)
          | Sees_customer, (Some Sees_provider | None) -> `P2c (a, b)
          | Sees_peer, (Some Sees_peer | None) -> `P2p
          | Sees_provider, Some Sees_provider | Sees_customer, Some Sees_customer ->
            `P2p (* contradictory claims: fall back to peer *)
          | Sees_peer, Some Sees_provider -> `P2c (a, b)
          | Sees_peer, Some Sees_customer -> `P2c (b, a)
          | Sees_provider, Some Sees_peer -> `P2c (b, a)
          | Sees_customer, Some Sees_peer -> `P2c (a, b)
        in
        match relationship with
        | `P2c (provider, customer) -> Rel_db.add_p2c rels ~provider ~customer
        | `P2p -> Rel_db.add_p2p rels a b
      end)
    views;
  rels

type accuracy = {
  inferred : int;
  checked : int;
  correct : int;
}

let accuracy ~truth inferred_db =
  let inferred = ref 0 and checked = ref 0 and correct = ref 0 in
  let seen = Hashtbl.create 512 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let key = if a < b then (a, b) else (b, a) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            incr inferred;
            match Rel_db.relationship truth a b with
            | Rel_db.Unknown -> ()
            | truth_rel ->
              incr checked;
              if Rel_db.relationship inferred_db a b = truth_rel then incr correct
          end)
        (Rel_db.neighbors inferred_db a))
    (Rel_db.ases inferred_db);
  { inferred = !inferred; checked = !checked; correct = !correct }
