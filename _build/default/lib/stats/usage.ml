module Ast = Rz_policy.Ast
module Ir = Rz_ir.Ir
module Db = Rz_irr.Db

type table1_row = {
  irr : string;
  size_bytes : int;
  n_aut_num : int;
  n_route : int;
  n_import : int;
  n_export : int;
}

type table2 = {
  defined_aut_num : int;
  defined_as_set : int;
  defined_route_set : int;
  defined_peering_set : int;
  defined_filter_set : int;
  ref_overall_aut_num : int;
  ref_overall_as_set : int;
  ref_overall_route_set : int;
  ref_overall_peering_set : int;
  ref_overall_filter_set : int;
  ref_peering_aut_num : int;
  ref_peering_as_set : int;
  ref_peering_peering_set : int;
  ref_filter_aut_num : int;
  ref_filter_as_set : int;
  ref_filter_route_set : int;
  ref_filter_filter_set : int;
}

type route_stats = {
  n_objects : int;
  n_prefix_origin : int;
  n_prefixes : int;
  multi_object_prefixes : int;
  multi_origin_prefixes : int;
  multi_maintainer_prefixes : int;
}

type as_set_stats = {
  n_sets : int;
  empty : int;
  singleton : int;
  over_10k : int;
  contains_any : int;
  recursive : int;
  with_loop : int;
  depth_5_plus : int;
}

type error_stats = {
  syntax_errors : int;
  invalid_as_set_names : int;
  invalid_route_set_names : int;
}

type t = {
  table1 : table1_row list;
  rules_per_aut_num : (Rz_net.Asn.t * int) list;
  bgpq4_rules_per_aut_num : (Rz_net.Asn.t * int) list;
  peering_simple_fraction : float;
  ases_bgpq4_only : float;
  filter_kind_histogram : (string * int) list;
  table2 : table2;
  route_stats : route_stats;
  as_set_stats : as_set_stats;
  error_stats : error_stats;
}

(* ---------------- Table 1 (raw dumps) ---------------- *)

let table1_of_dumps dumps =
  List.map
    (fun (irr, text) ->
      let parsed = Rz_rpsl.Reader.parse_string text in
      let count pred = List.length (List.filter pred parsed.objects) in
      let attr_count keys =
        List.fold_left
          (fun acc (o : Rz_rpsl.Obj.t) ->
            acc
            + List.length
                (List.filter (fun (a : Rz_rpsl.Attr.t) -> List.mem a.key keys) o.attrs))
          0 parsed.objects
      in
      { irr;
        size_bytes = String.length text;
        n_aut_num = count (fun o -> o.Rz_rpsl.Obj.cls = "aut-num");
        n_route = count (fun o -> o.Rz_rpsl.Obj.cls = "route" || o.cls = "route6");
        n_import = attr_count [ "import"; "mp-import" ];
        n_export = attr_count [ "export"; "mp-export" ] })
    dumps

(* ---------------- reference walking ---------------- *)

type refs = {
  aut_nums : (Rz_net.Asn.t, unit) Hashtbl.t;
  as_sets : (string, unit) Hashtbl.t;
  route_sets : (string, unit) Hashtbl.t;
  peering_sets : (string, unit) Hashtbl.t;
  filter_sets : (string, unit) Hashtbl.t;
}

let fresh_refs () =
  { aut_nums = Hashtbl.create 256;
    as_sets = Hashtbl.create 64;
    route_sets = Hashtbl.create 64;
    peering_sets = Hashtbl.create 8;
    filter_sets = Hashtbl.create 8 }

let canon = Rz_rpsl.Set_name.canonical

let rec walk_as_expr refs = function
  | Ast.Asn asn -> Hashtbl.replace refs.aut_nums asn ()
  | Ast.As_set name -> Hashtbl.replace refs.as_sets (canon name) ()
  | Ast.Any_as -> ()
  | Ast.And (a, b) | Ast.Or (a, b) | Ast.Except_as (a, b) ->
    walk_as_expr refs a;
    walk_as_expr refs b

let walk_peering refs = function
  | Ast.Peering_spec { as_expr; _ } -> walk_as_expr refs as_expr
  | Ast.Peering_set_ref name -> Hashtbl.replace refs.peering_sets (canon name) ()

let rec walk_filter refs = function
  | Ast.Any | Ast.Peer_as_filter | Ast.Prefix_set _ | Ast.Community _ | Ast.Fltr_martian -> ()
  | Ast.As_num (asn, _) -> Hashtbl.replace refs.aut_nums asn ()
  | Ast.As_set_ref (name, _) -> Hashtbl.replace refs.as_sets (canon name) ()
  | Ast.Route_set_ref (name, _) -> Hashtbl.replace refs.route_sets (canon name) ()
  | Ast.Filter_set_ref name -> Hashtbl.replace refs.filter_sets (canon name) ()
  | Ast.Path_regex regex ->
    let rec walk_regex = function
      | Rz_aspath.Regex_ast.Empty | Bol | Eol -> ()
      | Term term -> walk_term term
      | Seq (a, b) | Alt (a, b) -> walk_regex a; walk_regex b
      | Star a | Plus a | Opt a | Repeat (a, _, _) -> walk_regex a
      | Tilde_star term | Tilde_plus term -> walk_term term
    and walk_term = function
      | Rz_aspath.Regex_ast.Asn asn -> Hashtbl.replace refs.aut_nums asn ()
      | As_set name -> Hashtbl.replace refs.as_sets (canon name) ()
      | Asn_range _ | Peer_as | Wildcard -> ()
      | Class (_, terms) -> List.iter walk_term terms
    in
    walk_regex regex
  | Ast.And_f (a, b) | Ast.Or_f (a, b) ->
    walk_filter refs a;
    walk_filter refs b
  | Ast.Not_f a -> walk_filter refs a

let walk_rules ir ~in_peering ~in_filter =
  Hashtbl.iter
    (fun _ (an : Ir.aut_num) ->
      List.iter
        (fun (rule : Ast.rule) ->
          List.iter
            (fun (term : Ast.term) ->
              List.iter
                (fun (factor : Ast.factor) ->
                  List.iter
                    (fun (pa : Ast.peering_action) -> walk_peering in_peering pa.peering)
                    factor.peerings;
                  walk_filter in_filter factor.filter)
                term.factors)
            (Ast.expr_terms rule.expr))
        (an.imports @ an.exports))
    ir.Ir.aut_nums

(* ---------------- filter shapes / peering simplicity ---------------- *)

let filter_kind = function
  | Ast.Any -> "ANY"
  | Ast.Peer_as_filter -> "PeerAS"
  | Ast.As_num _ -> "asn"
  | Ast.As_set_ref _ -> "as-set"
  | Ast.Route_set_ref _ -> "route-set"
  | Ast.Filter_set_ref _ -> "filter-set"
  | Ast.Prefix_set _ -> "prefix-set"
  | Ast.Path_regex _ -> "as-path-regex"
  | Ast.Community _ -> "community"
  | Ast.Fltr_martian -> "fltr-martian"
  | Ast.And_f _ | Ast.Or_f _ | Ast.Not_f _ -> "composite"

let peering_is_simple = function
  | Ast.Peering_spec { as_expr = Ast.Asn _; _ } | Ast.Peering_spec { as_expr = Ast.Any_as; _ } ->
    true
  | _ -> false

(* ---------------- route-object stats (raw dumps) ---------------- *)

let route_stats_of_dumps dumps =
  let by_prefix : (string, (Rz_net.Asn.t * string) list) Hashtbl.t = Hashtbl.create 4096 in
  let pairs = Hashtbl.create 4096 in
  let n_objects = ref 0 in
  List.iter
    (fun (_, text) ->
      let parsed = Rz_rpsl.Reader.parse_string text in
      List.iter
        (fun (o : Rz_rpsl.Obj.t) ->
          if o.cls = "route" || o.cls = "route6" then begin
            match
              ( Rz_net.Prefix.of_string o.name,
                Option.bind (Rz_rpsl.Obj.value o "origin") (fun s ->
                    Result.to_option (Rz_net.Asn.of_string s)) )
            with
            | Ok prefix, Some origin ->
              incr n_objects;
              let key = Rz_net.Prefix.to_string prefix in
              let mnt = Option.value ~default:"" (Rz_rpsl.Obj.value o "mnt-by") in
              let existing = Option.value ~default:[] (Hashtbl.find_opt by_prefix key) in
              Hashtbl.replace by_prefix key ((origin, mnt) :: existing);
              Hashtbl.replace pairs (key, origin) ()
            | _ -> ()
          end)
        parsed.objects)
    dumps;
  let n_prefixes = Hashtbl.length by_prefix in
  let multi_object = ref 0 and multi_origin = ref 0 and multi_mnt = ref 0 in
  Hashtbl.iter
    (fun _ objects ->
      if List.length objects > 1 then begin
        incr multi_object;
        let origins = List.sort_uniq compare (List.map fst objects) in
        if List.length origins > 1 then incr multi_origin;
        let mnts = List.sort_uniq compare (List.map snd objects) in
        if List.length mnts > 1 then incr multi_mnt
      end)
    by_prefix;
  { n_objects = !n_objects;
    n_prefix_origin = Hashtbl.length pairs;
    n_prefixes;
    multi_object_prefixes = !multi_object;
    multi_origin_prefixes = !multi_origin;
    multi_maintainer_prefixes = !multi_mnt }

(* ---------------- as-set stats ---------------- *)

let as_set_stats_of db =
  let ir = Db.ir db in
  let stats =
    ref
      { n_sets = 0; empty = 0; singleton = 0; over_10k = 0; contains_any = 0;
        recursive = 0; with_loop = 0; depth_5_plus = 0 }
  in
  Hashtbl.iter
    (fun _ (set : Ir.as_set) ->
      let s = !stats in
      let n_direct = List.length set.member_asns + List.length set.member_sets in
      let recursive = set.member_sets <> [] in
      let flattened = Db.flatten_as_set db set.name in
      stats :=
        { n_sets = s.n_sets + 1;
          empty = (s.empty + if n_direct = 0 && not set.contains_any then 1 else 0);
          singleton =
            (s.singleton
             + if List.length set.member_asns = 1 && set.member_sets = [] then 1 else 0);
          over_10k = (s.over_10k + if Db.Asn_set.cardinal flattened > 10_000 then 1 else 0);
          contains_any = (s.contains_any + if set.contains_any then 1 else 0);
          recursive = (s.recursive + if recursive then 1 else 0);
          with_loop =
            (s.with_loop + if recursive && Db.as_set_has_loop db set.name then 1 else 0);
          depth_5_plus =
            (s.depth_5_plus + if recursive && Db.as_set_depth db set.name >= 5 then 1 else 0) })
    ir.Ir.as_sets;
  !stats

(* ---------------- errors ---------------- *)

let error_stats_of db =
  let ir = Db.ir db in
  List.fold_left
    (fun acc (e : Ir.error) ->
      match e.kind with
      | Ir.Syntax_error _ | Ir.Bad_origin _ | Ir.Bad_prefix _ ->
        { acc with syntax_errors = acc.syntax_errors + 1 }
      | Ir.Invalid_as_set_name ->
        { acc with invalid_as_set_names = acc.invalid_as_set_names + 1 }
      | Ir.Invalid_route_set_name ->
        { acc with invalid_route_set_names = acc.invalid_route_set_names + 1 }
      | Ir.Invalid_peering_set_name | Ir.Invalid_filter_set_name -> acc)
    { syntax_errors = 0; invalid_as_set_names = 0; invalid_route_set_names = 0 }
    ir.Ir.errors

(* ---------------- main ---------------- *)

let compute ~dumps db =
  let ir = Db.ir db in
  (* Figure 1 inputs. *)
  let rules_per_aut_num =
    Hashtbl.fold (fun asn an acc -> (asn, Ir.n_rules an) :: acc) ir.Ir.aut_nums []
    |> List.sort compare
  in
  let bgpq4_rules_per_aut_num =
    Hashtbl.fold
      (fun asn an acc -> (asn, Bgpq4_compat.compatible_rules an) :: acc)
      ir.Ir.aut_nums []
    |> List.sort compare
  in
  (* Peering simplicity and filter-shape histogram over all factors. *)
  let n_peerings = ref 0 and n_simple = ref 0 in
  let kinds : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let with_rules = ref 0 and bgpq4_only = ref 0 in
  Hashtbl.iter
    (fun _ (an : Ir.aut_num) ->
      let rules = an.imports @ an.exports in
      if rules <> [] then begin
        incr with_rules;
        if List.for_all Bgpq4_compat.rule_compatible rules then incr bgpq4_only
      end;
      List.iter
        (fun (rule : Ast.rule) ->
          List.iter
            (fun (term : Ast.term) ->
              List.iter
                (fun (factor : Ast.factor) ->
                  List.iter
                    (fun (pa : Ast.peering_action) ->
                      incr n_peerings;
                      if peering_is_simple pa.peering then incr n_simple)
                    factor.peerings;
                  let kind = filter_kind factor.filter in
                  Hashtbl.replace kinds kind
                    (1 + Option.value ~default:0 (Hashtbl.find_opt kinds kind)))
                term.factors)
            (Ast.expr_terms rule.expr))
        rules)
    ir.Ir.aut_nums;
  (* Table 2. *)
  let in_peering = fresh_refs () and in_filter = fresh_refs () in
  walk_rules ir ~in_peering ~in_filter;
  let union_count a b =
    let u = Hashtbl.copy a in
    Hashtbl.iter (fun k () -> Hashtbl.replace u k ()) b;
    Hashtbl.length u
  in
  let table2 =
    { defined_aut_num = Hashtbl.length ir.Ir.aut_nums;
      defined_as_set = Hashtbl.length ir.Ir.as_sets;
      defined_route_set = Hashtbl.length ir.Ir.route_sets;
      defined_peering_set = Hashtbl.length ir.Ir.peering_sets;
      defined_filter_set = Hashtbl.length ir.Ir.filter_sets;
      ref_overall_aut_num = union_count in_peering.aut_nums in_filter.aut_nums;
      ref_overall_as_set = union_count in_peering.as_sets in_filter.as_sets;
      ref_overall_route_set = union_count in_peering.route_sets in_filter.route_sets;
      ref_overall_peering_set = union_count in_peering.peering_sets in_filter.peering_sets;
      ref_overall_filter_set = union_count in_peering.filter_sets in_filter.filter_sets;
      ref_peering_aut_num = Hashtbl.length in_peering.aut_nums;
      ref_peering_as_set = Hashtbl.length in_peering.as_sets;
      ref_peering_peering_set = Hashtbl.length in_peering.peering_sets;
      ref_filter_aut_num = Hashtbl.length in_filter.aut_nums;
      ref_filter_as_set = Hashtbl.length in_filter.as_sets;
      ref_filter_route_set = Hashtbl.length in_filter.route_sets;
      ref_filter_filter_set = Hashtbl.length in_filter.filter_sets }
  in
  { table1 = table1_of_dumps dumps;
    rules_per_aut_num;
    bgpq4_rules_per_aut_num;
    peering_simple_fraction =
      (if !n_peerings = 0 then 0.0 else float_of_int !n_simple /. float_of_int !n_peerings);
    ases_bgpq4_only =
      (if !with_rules = 0 then 0.0 else float_of_int !bgpq4_only /. float_of_int !with_rules);
    filter_kind_histogram =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds [] |> List.sort compare;
    table2;
    route_stats = route_stats_of_dumps dumps;
    as_set_stats = as_set_stats_of db;
    error_stats = error_stats_of db }

let ccdf_rules per_as = Rz_util.Stats_util.ccdf (List.map snd per_as)
