module Ast = Rz_policy.Ast

let filter_compatible = function
  | Ast.Any | Ast.Peer_as_filter | Ast.As_num _ | Ast.As_set_ref _
  | Ast.Route_set_ref _ | Ast.Prefix_set _ -> true
  | Ast.Filter_set_ref _ | Ast.Path_regex _ | Ast.Community _ | Ast.Fltr_martian
  | Ast.And_f _ | Ast.Or_f _ | Ast.Not_f _ -> false

let rule_compatible (rule : Ast.rule) =
  match rule.expr with
  | Ast.Term_e term ->
    List.for_all (fun (f : Ast.factor) -> filter_compatible f.filter) term.factors
  | Ast.Except_e _ | Ast.Refine_e _ -> false

let compatible_rules (an : Rz_ir.Ir.aut_num) =
  List.length (List.filter rule_compatible an.imports)
  + List.length (List.filter rule_compatible an.exports)
