(** Post-merge registry contribution: with the paper's priority order,
    which IRR actually "owns" each object after deduplication — the
    flip side of Table 1's raw counts, quantifying how much lower-priority
    registries (RADB and friends) are shadowed by authoritative ones.
    The paper's Section 4 highlights this fragmentation ("registrars
    running their own IRR databases ... can lead to inconsistencies"). *)

type row = {
  irr : string;
  aut_nums : int;        (** objects this IRR contributed post-merge *)
  as_sets : int;
  route_sets : int;
  routes : int;          (** unique (prefix, origin) pairs owned *)
}

type t = {
  rows : row list;              (** in priority order; IRRs with no
                                    contribution included with zeros *)
  shadowed_routes : int;        (** raw route objects dropped by dedup *)
}

val compute : dumps:(string * string) list -> Rz_irr.Db.t -> t
