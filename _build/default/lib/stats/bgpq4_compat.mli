(** Classifier for BGPq4 compatibility (paper Section 4): BGPq4 resolves
    only single-term filters — no filter-sets, AS-path regexes, BGP
    communities, Composite Policy Filters (AND/OR/NOT), and no Structured
    Policies (refine/except). *)

val filter_compatible : Rz_policy.Ast.filter -> bool
val rule_compatible : Rz_policy.Ast.rule -> bool

val compatible_rules : Rz_ir.Ir.aut_num -> int
(** Number of this aut-num's rules BGPq4 could process. *)
