lib/stats/coverage.mli: Rz_irr
