lib/stats/bgpq4_compat.mli: Rz_ir Rz_policy
