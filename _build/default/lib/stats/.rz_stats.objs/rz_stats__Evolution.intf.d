lib/stats/evolution.mli: Rz_ir Rz_net
