lib/stats/classify.ml: Bgpq4_compat List Rz_asrel Rz_ir Rz_irr Rz_net Rz_policy
