lib/stats/usage.ml: Bgpq4_compat Hashtbl List Option Result Rz_aspath Rz_ir Rz_irr Rz_net Rz_policy Rz_rpsl Rz_util String
