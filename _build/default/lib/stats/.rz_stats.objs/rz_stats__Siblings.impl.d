lib/stats/siblings.ml: Hashtbl List Option Rz_ir Rz_irr Rz_net Rz_util
