lib/stats/infer_rels.mli: Rz_asrel Rz_irr Rz_net
