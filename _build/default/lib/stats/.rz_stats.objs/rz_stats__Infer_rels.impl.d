lib/stats/infer_rels.ml: Hashtbl List Option Rz_asrel Rz_ir Rz_irr Rz_net Rz_policy
