lib/stats/classify.mli: Rz_asrel Rz_ir Rz_irr Rz_net
