lib/stats/bgpq4_compat.ml: List Rz_ir Rz_policy
