lib/stats/coverage.ml: Hashtbl List Option Rz_ir Rz_irr Rz_rpsl
