lib/stats/usage.mli: Rz_irr Rz_net
