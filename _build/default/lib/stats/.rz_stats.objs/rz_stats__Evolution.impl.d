lib/stats/evolution.ml: Hashtbl List Printf Rz_ir Rz_net Rz_policy Rz_rpsl String
