lib/stats/siblings.mli: Rz_irr Rz_net
