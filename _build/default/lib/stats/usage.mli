(** Section-4 characterization: everything behind Table 1, Figure 1,
    Table 2, and the prose statistics on route objects, as-set structure,
    and RPSL errors. *)

(** One row of Table 1. *)
type table1_row = {
  irr : string;
  size_bytes : int;
  n_aut_num : int;
  n_route : int;       (** route + route6 objects (pre-dedup) *)
  n_import : int;      (** import + mp-import attributes *)
  n_export : int;
}

(** Table 2: objects defined vs referenced in rules. *)
type table2 = {
  defined_aut_num : int;
  defined_as_set : int;
  defined_route_set : int;
  defined_peering_set : int;
  defined_filter_set : int;
  ref_overall_aut_num : int;
  ref_overall_as_set : int;
  ref_overall_route_set : int;
  ref_overall_peering_set : int;
  ref_overall_filter_set : int;
  ref_peering_aut_num : int;
  ref_peering_as_set : int;
  ref_peering_peering_set : int;
  ref_filter_aut_num : int;
  ref_filter_as_set : int;
  ref_filter_route_set : int;
  ref_filter_filter_set : int;
}

(** Route-object maintenance statistics (Section 4 prose). *)
type route_stats = {
  n_objects : int;           (** raw route objects across all IRRs *)
  n_prefix_origin : int;     (** unique (prefix, origin) pairs *)
  n_prefixes : int;          (** unique prefixes *)
  multi_object_prefixes : int;      (** prefixes with more than one object *)
  multi_origin_prefixes : int;      (** ... with objects naming different origins *)
  multi_maintainer_prefixes : int;  (** ... with objects by different maintainers *)
}

(** As-set structure statistics (Section 4 prose). *)
type as_set_stats = {
  n_sets : int;
  empty : int;
  singleton : int;           (** exactly one member AS, no nested sets *)
  over_10k : int;            (** flattened size > 10,000 *)
  contains_any : int;        (** the reserved word ANY as a member *)
  recursive : int;           (** references at least one nested set *)
  with_loop : int;           (** among recursive sets, participates in/reaches a loop *)
  depth_5_plus : int;        (** among recursive sets, nesting depth >= 5 *)
}

type error_stats = {
  syntax_errors : int;
  invalid_as_set_names : int;
  invalid_route_set_names : int;
}

type t = {
  table1 : table1_row list;
  rules_per_aut_num : (Rz_net.Asn.t * int) list;
  bgpq4_rules_per_aut_num : (Rz_net.Asn.t * int) list;
  peering_simple_fraction : float;
      (** fraction of peering definitions that are a single ASN or AS-ANY *)
  ases_bgpq4_only : float;
      (** among ASes with rules, fraction whose rules are all
          BGPq4-compatible *)
  filter_kind_histogram : (string * int) list;
      (** top-level filter shape -> count over all factors *)
  table2 : table2;
  route_stats : route_stats;
  as_set_stats : as_set_stats;
  error_stats : error_stats;
}

val compute : dumps:(string * string) list -> Rz_irr.Db.t -> t
(** [dumps] are the raw (IRR name, RPSL text) pairs — needed for Table 1
    sizes and the pre-dedup route-object statistics; [db] is the already
    merged database for everything else. *)

val ccdf_rules : (Rz_net.Asn.t * int) list -> (int * float) list
(** Figure 1's CCDF over rule counts. *)
