module Ast = Rz_policy.Ast
module Ir = Rz_ir.Ir

type style =
  | Unregistered
  | Silent
  | Open_policy
  | Provider_only
  | Simple
  | Expressive

type profile = {
  asn : Rz_net.Asn.t;
  style : style;
  n_rules : int;
  n_neighbors_declared : int;
  uses_sets : bool;
  multiprotocol : bool;
}

let style_to_string = function
  | Unregistered -> "unregistered"
  | Silent -> "silent"
  | Open_policy -> "open-policy"
  | Provider_only -> "provider-only"
  | Simple -> "simple"
  | Expressive -> "expressive"

let all_styles = [ Unregistered; Silent; Open_policy; Provider_only; Simple; Expressive ]

(* Structural facts about one aut-num's rules. *)
let rec as_expr_asns acc = function
  | Ast.Asn asn -> asn :: acc
  | Ast.As_set _ | Ast.Any_as -> acc
  | Ast.And (a, b) | Ast.Or (a, b) | Ast.Except_as (a, b) ->
    as_expr_asns (as_expr_asns acc a) b

let rec as_expr_has_any = function
  | Ast.Any_as -> true
  | Ast.Asn _ | Ast.As_set _ -> false
  | Ast.And (a, b) | Ast.Or (a, b) | Ast.Except_as (a, b) ->
    as_expr_has_any a || as_expr_has_any b

let rec filter_uses_sets = function
  | Ast.As_set_ref _ | Ast.Route_set_ref _ | Ast.Filter_set_ref _ -> true
  | Ast.And_f (a, b) | Ast.Or_f (a, b) -> filter_uses_sets a || filter_uses_sets b
  | Ast.Not_f a -> filter_uses_sets a
  | Ast.Any | Ast.Peer_as_filter | Ast.As_num _ | Ast.Prefix_set _ | Ast.Path_regex _
  | Ast.Community _ | Ast.Fltr_martian -> false

let classify_aut_num ?rels (an : Ir.aut_num) =
  let rules = an.imports @ an.exports in
  let n_rules = List.length rules in
  let peer_asns = ref [] in
  let has_any_peering = ref false in
  let uses_sets = ref false in
  let expressive = ref false in
  List.iter
    (fun (rule : Ast.rule) ->
      if not (Bgpq4_compat.rule_compatible rule) then expressive := true;
      List.iter
        (fun (term : Ast.term) ->
          List.iter
            (fun (factor : Ast.factor) ->
              if filter_uses_sets factor.filter then uses_sets := true;
              List.iter
                (fun (pa : Ast.peering_action) ->
                  match pa.peering with
                  | Ast.Peering_spec { as_expr; _ } ->
                    peer_asns := as_expr_asns !peer_asns as_expr;
                    if as_expr_has_any as_expr then has_any_peering := true
                  | Ast.Peering_set_ref _ -> ())
                factor.peerings)
            term.factors)
        (Ast.expr_terms rule.expr))
    rules;
  let neighbors = List.sort_uniq compare !peer_asns in
  let style =
    if n_rules = 0 then Silent
    else if !expressive then Expressive
    else if !has_any_peering && neighbors = [] then Open_policy
    else begin
      let provider_only =
        match rels with
        | Some rels ->
          neighbors <> []
          && (not !has_any_peering)
          && List.for_all
               (fun n ->
                 Rz_asrel.Rel_db.relationship rels n an.asn
                 = Rz_asrel.Rel_db.A_provider_of_b)
               neighbors
          && Rz_asrel.Rel_db.customers rels an.asn <> []
        | None -> false
      in
      if provider_only then Provider_only else Simple
    end
  in
  { asn = an.asn;
    style;
    n_rules;
    n_neighbors_declared = List.length neighbors;
    uses_sets = !uses_sets;
    multiprotocol = List.exists (fun (r : Ast.rule) -> r.multiprotocol) rules }

let classify_all ?rels ~observed db =
  List.map
    (fun asn ->
      match Rz_irr.Db.find_aut_num db asn with
      | Some an -> classify_aut_num ?rels an
      | None ->
        { asn; style = Unregistered; n_rules = 0; n_neighbors_declared = 0;
          uses_sets = false; multiprotocol = false })
    observed

let histogram profiles =
  List.map
    (fun style ->
      (style, List.length (List.filter (fun p -> p.style = style) profiles)))
    all_styles
