(** Suggested policy rewrites — the constructive half of the linter,
    following the paper's recommendations: replace export-self filters
    with the customer-cone set, import-customer filters with the
    customer's cone (or its route-set when one exists), and materialized
    ASN filters with route-sets. The output is valid RPSL text that can be
    diffed against the original object. *)

type change = {
  before : string;   (** the original rule, rendered *)
  after : string;    (** the suggested replacement *)
  reason : string;
}

type suggestion = {
  asn : Rz_net.Asn.t;
  changes : change list;
  rewritten : string;   (** the full corrected aut-num object as RPSL *)
}

val suggest :
  rels:Rz_asrel.Rel_db.t ->
  Rz_irr.Db.t ->
  Rz_net.Asn.t ->
  suggestion option
(** [None] when the AS has no aut-num or nothing to change. *)
