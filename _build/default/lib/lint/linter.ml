module Db = Rz_irr.Db
module Ir = Rz_ir.Ir
module Ast = Rz_policy.Ast
module Rel_db = Rz_asrel.Rel_db

type severity = Error | Warning | Suggestion

type check =
  | Invalid_set_name
  | Reserved_word_member
  | Empty_set
  | Singleton_set
  | Set_loop
  | Deep_set
  | Huge_set
  | Unknown_member
  | Export_self_misuse
  | Import_customer_misuse
  | Filter_without_routes
  | Zero_rules
  | Missing_direction
  | Asn_filter_could_be_route_set
  | Unreferenced_set
  | Undeclared_neighbor
  | Private_asn_leak
  | Dangling_maintainer
  | Template_violation

type diagnostic = {
  check : check;
  severity : severity;
  cls : string;
  obj : string;
  message : string;
}

let check_to_string = function
  | Invalid_set_name -> "invalid-set-name"
  | Reserved_word_member -> "reserved-word-member"
  | Empty_set -> "empty-set"
  | Singleton_set -> "singleton-set"
  | Set_loop -> "set-loop"
  | Deep_set -> "deep-set"
  | Huge_set -> "huge-set"
  | Unknown_member -> "unknown-member"
  | Export_self_misuse -> "export-self-misuse"
  | Import_customer_misuse -> "import-customer-misuse"
  | Filter_without_routes -> "filter-without-routes"
  | Zero_rules -> "zero-rules"
  | Missing_direction -> "missing-direction"
  | Asn_filter_could_be_route_set -> "asn-filter-could-be-route-set"
  | Unreferenced_set -> "unreferenced-set"
  | Undeclared_neighbor -> "undeclared-neighbor"
  | Private_asn_leak -> "private-asn-leak"
  | Dangling_maintainer -> "dangling-maintainer"
  | Template_violation -> "template-violation"

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Suggestion -> "suggestion"

let diagnostic_to_string d =
  Printf.sprintf "%s: %s %s: [%s] %s" (severity_to_string d.severity) d.cls d.obj
    (check_to_string d.check) d.message

let severity_rank = function Error -> 0 | Warning -> 1 | Suggestion -> 2

(* ---------------- per-check helpers ---------------- *)

let diag check severity cls obj fmt =
  Printf.ksprintf (fun message -> { check; severity; cls; obj; message }) fmt

(* References collected from all rules, to drive the unreferenced-set and
   undeclared-neighbor checks. *)
type refs = {
  sets : (string, unit) Hashtbl.t;      (* canonical names of referenced sets *)
  neighbors_of : (Rz_net.Asn.t, Rz_net.Asn.t list) Hashtbl.t;
      (* ASNs referenced in each aut-num's peerings *)
}

let canon = Rz_rpsl.Set_name.canonical

let collect_refs (ir : Ir.t) =
  let refs = { sets = Hashtbl.create 256; neighbors_of = Hashtbl.create 256 } in
  let add_set name = Hashtbl.replace refs.sets (canon name) () in
  let rec scan_as_expr acc = function
    | Ast.Asn asn -> asn :: acc
    | Ast.As_set name -> add_set name; acc
    | Ast.Any_as -> acc
    | Ast.And (a, b) | Ast.Or (a, b) | Ast.Except_as (a, b) ->
      scan_as_expr (scan_as_expr acc a) b
  in
  let rec scan_filter = function
    | Ast.Any | Ast.Peer_as_filter | Ast.Fltr_martian | Ast.Prefix_set _
    | Ast.Community _ | Ast.As_num _ | Ast.Path_regex _ -> ()
    | Ast.As_set_ref (name, _) | Ast.Route_set_ref (name, _) | Ast.Filter_set_ref name ->
      add_set name
    | Ast.And_f (a, b) | Ast.Or_f (a, b) -> scan_filter a; scan_filter b
    | Ast.Not_f a -> scan_filter a
  in
  Hashtbl.iter
    (fun asn (an : Ir.aut_num) ->
      let peer_asns = ref [] in
      List.iter
        (fun (rule : Ast.rule) ->
          List.iter
            (fun (term : Ast.term) ->
              List.iter
                (fun (factor : Ast.factor) ->
                  List.iter
                    (fun (pa : Ast.peering_action) ->
                      match pa.peering with
                      | Ast.Peering_spec { as_expr; _ } ->
                        peer_asns := scan_as_expr !peer_asns as_expr
                      | Ast.Peering_set_ref name -> add_set name)
                    factor.peerings;
                  scan_filter factor.filter)
                term.factors)
            (Ast.expr_terms rule.expr))
        (an.imports @ an.exports);
      Hashtbl.replace refs.neighbors_of asn (List.sort_uniq compare !peer_asns))
    ir.aut_nums;
  refs

(* ---------------- set checks ---------------- *)

let lint_as_set db (s : Ir.as_set) =
  let out = ref [] in
  let add d = out := d :: !out in
  if not (Rz_rpsl.Set_name.is_valid Rz_rpsl.Set_name.As_set s.name) then
    add (diag Invalid_set_name Error "as-set" s.name
           "name must be colon-separated ASNs and AS- components; rename the set");
  if s.contains_any then
    add (diag Reserved_word_member Error "as-set" s.name
           "the reserved word ANY is not a valid member; remove it");
  let n_direct = List.length s.member_asns + List.length s.member_sets in
  if n_direct = 0 && not s.contains_any && s.mbrs_by_ref = [] then
    add (diag Empty_set Warning "as-set" s.name
           "set has no members; using it in a rule matches nothing");
  if List.length s.member_asns = 1 && s.member_sets = [] then
    add (diag Singleton_set Suggestion "as-set" s.name
           "set has a single member %s; reference the ASN directly"
           (Rz_net.Asn.to_string (List.hd s.member_asns)));
  if s.member_sets <> [] && Db.as_set_has_loop db s.name then
    add (diag Set_loop Warning "as-set" s.name
           "membership graph contains a cycle; flatten or break the loop");
  let depth = Db.as_set_depth db s.name in
  if depth >= 5 then
    add (diag Deep_set Warning "as-set" s.name
           "nesting depth %d makes manual tracking error-prone; flatten the hierarchy"
           depth);
  if Db.Asn_set.cardinal (Db.flatten_as_set db s.name) > 10_000 then
    add (diag Huge_set Warning "as-set" s.name
           "set flattens to more than 10,000 ASNs; filters built from it will be enormous");
  List.iter
    (fun child ->
      if not (Db.as_set_exists db child) then
        add (diag Unknown_member Error "as-set" s.name
               "member %s is not defined in any IRR" child))
    s.member_sets;
  !out

let lint_route_set db (s : Ir.route_set) =
  let out = ref [] in
  let add d = out := d :: !out in
  if not (Rz_rpsl.Set_name.is_valid Rz_rpsl.Set_name.Route_set s.name) then
    add (diag Invalid_set_name Error "route-set" s.name
           "name must be colon-separated ASNs and RS- components; rename the set");
  if s.members = [] && s.mbrs_by_ref = [] then
    add (diag Empty_set Warning "route-set" s.name "set has no members");
  List.iter
    (function
      | Ir.Rs_set (child, _)
        when not (Db.route_set_exists db child || Db.as_set_exists db child) ->
        add (diag Unknown_member Error "route-set" s.name
               "member %s is not defined in any IRR" child)
      | _ -> ())
    s.members;
  !out

(* ---------------- aut-num checks ---------------- *)

(* A transit AS whose export filter toward a provider/peer is its own bare
   ASN almost certainly means "me and my customers" (paper Section 5.1.1). *)
let rule_filters (rule : Ast.rule) =
  List.concat_map
    (fun (term : Ast.term) -> List.map (fun (f : Ast.factor) -> f.filter) term.factors)
    (Ast.expr_terms rule.expr)

let rule_peering_asns (rule : Ast.rule) =
  let rec scan acc = function
    | Ast.Asn asn -> asn :: acc
    | Ast.As_set _ | Ast.Any_as -> acc
    | Ast.And (a, b) | Ast.Or (a, b) | Ast.Except_as (a, b) -> scan (scan acc a) b
  in
  List.concat_map
    (fun (term : Ast.term) ->
      List.concat_map
        (fun (f : Ast.factor) ->
          List.concat_map
            (fun (pa : Ast.peering_action) ->
              match pa.peering with
              | Ast.Peering_spec { as_expr; _ } -> scan [] as_expr
              | Ast.Peering_set_ref _ -> [])
            f.peerings)
        term.factors)
    (Ast.expr_terms rule.expr)

let lint_aut_num db rels refs (an : Ir.aut_num) =
  let out = ref [] in
  let add d = out := d :: !out in
  let name = Rz_net.Asn.to_string an.asn in
  if an.imports = [] && an.exports = [] then
    add (diag Zero_rules Warning "aut-num" name
           "no import/export rules; neighbors cannot build filters from this object")
  else if an.imports = [] then
    add (diag Missing_direction Warning "aut-num" name "exports declared but no imports")
  else if an.exports = [] then
    add (diag Missing_direction Warning "aut-num" name "imports declared but no exports");
  (* filter-level checks *)
  List.iter
    (fun (rule : Ast.rule) ->
      List.iter
        (fun filter ->
          match filter with
          | Ast.As_num (asn, _) ->
            if not (Db.origin_has_routes db asn) then
              add (diag Filter_without_routes Warning "aut-num" name
                     "filter references %s which originates no route objects"
                     (Rz_net.Asn.to_string asn))
            else if rule.direction = `Import then
              add (diag Asn_filter_could_be_route_set Suggestion "aut-num" name
                     "filter %s depends on the neighbor's route objects; a route-set \
                      names the prefixes directly and supports per-neighbor sets"
                     (Rz_net.Asn.to_string asn))
          | Ast.As_set_ref (set, _) when not (Db.as_set_exists db set) ->
            add (diag Unknown_member Error "aut-num" name
                   "filter references undefined as-set %s" set)
          | Ast.Route_set_ref (set, _) when not (Db.route_set_exists db set) ->
            add (diag Unknown_member Error "aut-num" name
                   "filter references undefined route-set %s" set)
          | _ -> ())
        (rule_filters rule);
      List.iter
        (fun asn ->
          if Rz_net.Asn.is_private asn || Rz_net.Asn.is_reserved asn then
            add (diag Private_asn_leak Warning "aut-num" name
                   "peering references private/reserved %s" (Rz_net.Asn.to_string asn)))
        (rule_peering_asns rule))
    (an.imports @ an.exports);
  (* relationship-dependent checks *)
  (match rels with
   | None -> ()
   | Some rels ->
     let customers = Rel_db.customers rels an.asn in
     let is_transit = customers <> [] in
     if is_transit then begin
       (* export-self: an export rule whose filter is the bare own ASN *)
       List.iter
         (fun (rule : Ast.rule) ->
           List.iter
             (fun filter ->
               match filter with
               | Ast.As_num (asn, _) when asn = an.asn ->
                 add (diag Export_self_misuse Warning "aut-num" name
                        "transit AS announces only itself; if customer routes are \
                         also exported, announce an as-set or route-set covering \
                         the customer cone")
               | _ -> ())
             (rule_filters rule))
         an.exports;
       (* import-customer: from C accept C with transit customer C *)
       List.iter
         (fun (rule : Ast.rule) ->
           let peers = rule_peering_asns rule in
           List.iter
             (fun filter ->
               match filter with
               | Ast.As_num (asn, _)
                 when List.mem asn peers
                      && List.mem asn customers
                      && Rel_db.customers rels asn <> [] ->
                 add (diag Import_customer_misuse Warning "aut-num" name
                        "accepting only %s's own prefixes from transit customer %s; \
                         its customers' routes would be rejected — accept its cone \
                         set or ANY"
                        (Rz_net.Asn.to_string asn) (Rz_net.Asn.to_string asn))
               | _ -> ())
             (rule_filters rule))
         an.imports;
       ()
     end;
     (* undeclared neighbors: the dominant cause of unverified hops *)
     if an.imports <> [] || an.exports <> [] then begin
       let declared =
         Option.value ~default:[] (Hashtbl.find_opt refs.neighbors_of an.asn)
       in
       let has_any =
         List.exists
           (fun (rule : Ast.rule) ->
             List.exists
               (fun (term : Ast.term) ->
                 List.exists
                   (fun (f : Ast.factor) ->
                     List.exists
                       (fun (pa : Ast.peering_action) ->
                         match pa.peering with
                         | Ast.Peering_spec { as_expr = Ast.Any_as; _ } -> true
                         | _ -> false)
                       f.peerings)
                   term.factors)
               (Ast.expr_terms rule.expr))
           (an.imports @ an.exports)
       in
       if not has_any then
         List.iter
           (fun neighbor ->
             if not (List.mem neighbor declared) then
               add (diag Undeclared_neighbor Suggestion "aut-num" name
                      "no rule covers neighbor %s; routes over that session cannot \
                       be verified"
                      (Rz_net.Asn.to_string neighbor)))
           (Rel_db.neighbors rels an.asn)
     end);
  !out

(* ---------------- whole-database lint ---------------- *)

let sort_diags diags =
  List.sort
    (fun a b ->
      let c = compare (severity_rank a.severity) (severity_rank b.severity) in
      if c <> 0 then c
      else
        let c = compare a.cls b.cls in
        if c <> 0 then c else compare a.obj b.obj)
    diags

let lint ?rels db =
  let ir = Db.ir db in
  let refs = collect_refs ir in
  let out = ref [] in
  (* dangling maintainers — meaningful only when the dumps carry mntner
     objects at all *)
  if Hashtbl.length ir.mntners > 0 then
    Hashtbl.iter
      (fun _ (an : Ir.aut_num) ->
        List.iter
          (fun mnt ->
            if Ir.find_mntner ir mnt = None then
              out :=
                diag Dangling_maintainer Warning "aut-num" (Rz_net.Asn.to_string an.asn)
                  "mnt-by references undefined maintainer %s" mnt
                :: !out)
          an.mnt_by)
      ir.aut_nums;
  Hashtbl.iter (fun _ s -> out := lint_as_set db s @ !out) ir.as_sets;
  Hashtbl.iter (fun _ s -> out := lint_route_set db s @ !out) ir.route_sets;
  Hashtbl.iter (fun _ an -> out := lint_aut_num db rels refs an @ !out) ir.aut_nums;
  (* unreferenced sets *)
  Hashtbl.iter
    (fun key (s : Ir.as_set) ->
      if not (Hashtbl.mem refs.sets key) then
        out :=
          diag Unreferenced_set Suggestion "as-set" s.name
            "defined but never referenced by any rule"
          :: !out)
    ir.as_sets;
  Hashtbl.iter
    (fun key (s : Ir.route_set) ->
      if not (Hashtbl.mem refs.sets key) then
        out :=
          diag Unreferenced_set Suggestion "route-set" s.name
            "defined but never referenced by any rule"
          :: !out)
    ir.route_sets;
  sort_diags !out

let lint_objects objects =
  List.concat_map
    (fun (obj : Rz_rpsl.Obj.t) ->
      match Rz_rpsl.Template.check obj with
      | None -> []
      | Some problems ->
        List.map
          (fun problem ->
            let severity =
              match problem with
              | Rz_rpsl.Template.Repeated_single _ -> Error
              | Rz_rpsl.Template.Missing_mandatory _ -> Warning
              | Rz_rpsl.Template.Unknown_attribute _ -> Suggestion
            in
            diag Template_violation severity obj.cls obj.name "%s"
              (Rz_rpsl.Template.problem_to_string problem))
          problems)
    objects
  |> sort_diags

let lint_object db ~cls ~name =
  let ir = Db.ir db in
  let refs = collect_refs ir in
  let diags =
    match cls with
    | "as-set" ->
      (match Ir.find_as_set ir name with Some s -> lint_as_set db s | None -> [])
    | "route-set" ->
      (match Ir.find_route_set ir name with Some s -> lint_route_set db s | None -> [])
    | "aut-num" ->
      (match Result.to_option (Rz_net.Asn.of_string name) with
       | Some asn ->
         (match Ir.find_aut_num ir asn with
          | Some an -> lint_aut_num db None refs an
          | None -> [])
       | None -> [])
    | _ -> []
  in
  sort_diags diags
