lib/lint/linter.mli: Rz_asrel Rz_irr Rz_rpsl
