lib/lint/linter.ml: Hashtbl List Option Printf Result Rz_asrel Rz_ir Rz_irr Rz_net Rz_policy Rz_rpsl
