lib/lint/rewrite.mli: Rz_asrel Rz_irr Rz_net
