lib/lint/rewrite.ml: Buffer List Printf Rz_asrel Rz_ir Rz_irr Rz_net Rz_policy
