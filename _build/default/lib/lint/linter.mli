(** RPSL linter — the "further RPSL tooling such as linters" the paper
    lists as future work, built from its own findings: each check flags a
    misuse or hygiene problem Sections 4-5 quantify, and the suggested fix
    follows the paper's recommendations (route-sets over ASN filters,
    pruning empty/singleton sets, declaring policies per neighbor). *)

type severity = Error | Warning | Suggestion

(** Every diagnostic the linter can emit. *)
type check =
  | Invalid_set_name            (** name lacks the AS-/RS-/PRNG-/FLTR- prefix (paper: 12 + 17 objects) *)
  | Reserved_word_member        (** as-set contains ANY / AS-ANY (paper: 3 sets) *)
  | Empty_set                   (** no members at all (paper: 14.5% of as-sets) *)
  | Singleton_set               (** one member AS — the set is unnecessary (paper: 32.7%) *)
  | Set_loop                    (** the set participates in or reaches a membership cycle (paper: 3,050 sets) *)
  | Deep_set                    (** nesting depth >= 5 (paper: 3,129 sets) *)
  | Huge_set                    (** flattens to > 10,000 ASNs (paper: 772 sets) *)
  | Unknown_member              (** member references an undefined set *)
  | Export_self_misuse          (** transit AS announces only itself uphill (paper: 64.4% of transit ASes) *)
  | Import_customer_misuse      (** [from C accept C] with a transit customer (paper: 29.8%) *)
  | Filter_without_routes       (** filter references an AS with no route objects *)
  | Zero_rules                  (** aut-num declares no policy at all (paper: 35.2%) *)
  | Missing_direction           (** aut-num has imports but no exports, or vice versa *)
  | Asn_filter_could_be_route_set
      (** ASN / as-set used as a prefix filter — the paper's headline
          recommendation is to use route-sets instead *)
  | Unreferenced_set            (** set defined but never used in any rule (paper: Table 2 gap) *)
  | Undeclared_neighbor         (** rules exist but none covers a known neighbor
                                    (the cause of 98.98% of unverified hops) *)
  | Private_asn_leak            (** rule peering references a private/reserved ASN *)
  | Dangling_maintainer         (** mnt-by references a mntner object absent from
                                    every IRR (only checked when the database
                                    contains mntner objects at all) *)
  | Template_violation          (** object violates its RFC 2622 class template
                                    (missing mandatory attribute, repeated
                                    single-valued attribute, unknown attribute) *)

type diagnostic = {
  check : check;
  severity : severity;
  cls : string;          (** object class the diagnostic is about *)
  obj : string;          (** object name *)
  message : string;      (** human-readable, includes the recommendation *)
}

val check_to_string : check -> string
val severity_to_string : severity -> string
val diagnostic_to_string : diagnostic -> string

val lint :
  ?rels:Rz_asrel.Rel_db.t ->
  Rz_irr.Db.t ->
  diagnostic list
(** Run every check over the database. Relationship-dependent checks
    (export-self, import-customer, undeclared-neighbor) only fire when
    [rels] is given. Diagnostics are sorted by severity, then object. *)

val lint_objects : Rz_rpsl.Obj.t list -> diagnostic list
(** Template validation over raw parsed objects (run before lowering,
    like an IRR server checking a submission). *)

val lint_object : Rz_irr.Db.t -> cls:string -> name:string -> diagnostic list
(** Diagnostics restricted to one object (relationship-free checks only). *)
