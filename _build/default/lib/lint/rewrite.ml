module Ast = Rz_policy.Ast
module Db = Rz_irr.Db
module Ir = Rz_ir.Ir
module Rel_db = Rz_asrel.Rel_db

type change = {
  before : string;
  after : string;
  reason : string;
}

type suggestion = {
  asn : Rz_net.Asn.t;
  changes : change list;
  rewritten : string;
}

(* The cone set an AS should announce: an existing one referenced
   somewhere, else the conventional hierarchical name. *)
let cone_set_for db asn =
  let candidates =
    [ Printf.sprintf "AS%d:AS-CUST" asn; Printf.sprintf "AS-%d" asn ]
  in
  match List.find_opt (Db.as_set_exists db) candidates with
  | Some existing -> existing
  | None -> Printf.sprintf "AS%d:AS-CUST" asn

let route_set_for db asn =
  let name = Printf.sprintf "AS%d:RS-ROUTES" asn in
  if Db.route_set_exists db name then Some name else None

(* Rewrite one rule when it exhibits a misuse; [None] = keep as is. *)
let rewrite_rule ~rels db ~subject (rule : Ast.rule) =
  let is_transit asn = Rel_db.customers rels asn <> [] in
  match rule.expr with
  | Ast.Term_e
      { afi;
        factors =
          [ ({ peerings = [ { peering = Ast.Peering_spec spec; actions } ]; filter } as _factor)
          ] } -> begin
      let remake filter' reason =
        let rule' =
          { rule with
            expr =
              Ast.Term_e
                { afi;
                  factors =
                    [ { peerings = [ { peering = Ast.Peering_spec spec; actions } ];
                        filter = filter' } ] } }
        in
        Some (rule', reason)
      in
      match (rule.direction, spec.as_expr, filter) with
      (* export-self: transit announcing only itself to a provider/peer *)
      | `Export, Ast.Asn remote, Ast.As_num (self, op)
        when self = subject && is_transit subject
             && Rel_db.relationship rels subject remote <> Rel_db.A_provider_of_b ->
        ignore op;
        remake
          (Ast.As_set_ref (cone_set_for db subject, Rz_net.Range_op.None_))
          "transit AS announced only itself; announce the customer cone set"
      (* import-customer: accepting only the transit customer's own routes *)
      | `Import, Ast.Asn remote, Ast.As_num (named, op)
        when named = remote
             && Rel_db.relationship rels subject remote = Rel_db.A_provider_of_b
             && is_transit remote ->
        ignore op;
        (match route_set_for db remote with
         | Some rs ->
           remake
             (Ast.Route_set_ref (rs, Rz_net.Range_op.None_))
             "customer is itself transit; accept its route-set"
         | None ->
           remake
             (Ast.As_set_ref (cone_set_for db remote, Rz_net.Range_op.None_))
             "customer is itself transit; accept its cone set")
      (* paper's headline recommendation: a stub neighbor's ASN filter is
         better served by its route-set when it maintains one *)
      | `Import, Ast.Asn remote, Ast.As_num (named, _)
        when named = remote && not (is_transit remote) ->
        (match route_set_for db remote with
         | Some rs ->
           remake
             (Ast.Route_set_ref (rs, Rz_net.Range_op.None_))
             "route-sets name prefixes directly and avoid stale route objects"
         | None -> None)
      | _ -> None
    end
  | _ -> None

let render_aut_num (an : Ir.aut_num) rules =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "aut-num: %s\n" (Rz_net.Asn.to_string an.asn));
  if an.as_name <> "" then Buffer.add_string buf (Printf.sprintf "as-name: %s\n" an.as_name);
  List.iter (fun text -> Buffer.add_string buf (text ^ "\n")) rules;
  List.iter (fun m -> Buffer.add_string buf (Printf.sprintf "mnt-by: %s\n" m)) an.mnt_by;
  Buffer.add_string buf (Printf.sprintf "source: %s\n" an.source);
  Buffer.contents buf

let suggest ~rels db asn =
  match Db.find_aut_num db asn with
  | None -> None
  | Some an ->
    let changes = ref [] in
    let rewritten_rules =
      List.map
        (fun rule ->
          match rewrite_rule ~rels db ~subject:asn rule with
          | Some (rule', reason) ->
            changes :=
              { before = Ast.rule_to_string rule;
                after = Ast.rule_to_string rule';
                reason }
              :: !changes;
            Ast.rule_to_string rule'
          | None -> Ast.rule_to_string rule)
        (an.imports @ an.exports)
    in
    match List.rev !changes with
    | [] -> None
    | changes ->
      Some { asn; changes; rewritten = render_aut_num an rewritten_rules }
