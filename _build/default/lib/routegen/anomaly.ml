module Gen = Rz_topology.Gen
module Rel_db = Rz_asrel.Rel_db

type kind =
  | Prefix_hijack
  | Forged_origin
  | Route_leak

type event = {
  kind : kind;
  attacker : Rz_net.Asn.t;
  victim : Rz_net.Asn.t;
  prefix : Rz_net.Prefix.t;
  route : Rz_bgp.Route.t;
}

let kind_to_string = function
  | Prefix_hijack -> "prefix-hijack"
  | Forged_origin -> "forged-origin"
  | Route_leak -> "route-leak"

(* The observer's path towards a destination AS, wire order. *)
let observer_path topo ~observer ~dest =
  let table = Propagate.best_routes topo ~dest in
  Option.map (fun (b : Propagate.best) -> b.path) (Hashtbl.find_opt table observer)

let sample_pair rng (topo : Gen.t) =
  let n = Array.length topo.ases in
  let attacker = topo.ases.(Rz_util.Splitmix.int rng n) in
  let victim = topo.ases.(Rz_util.Splitmix.int rng n) in
  (attacker, victim)

let victim_prefix rng topo victim =
  match Gen.prefixes_of topo victim with
  | [] -> None
  | prefixes -> Some (List.nth prefixes (Rz_util.Splitmix.int rng (List.length prefixes)))

let inject ?(seed = 1234) (topo : Gen.t) ~observer ~n kind =
  let rng = Rz_util.Splitmix.create seed in
  let events = ref [] in
  let attempts = ref 0 in
  while List.length !events < n && !attempts < n * 20 do
    incr attempts;
    let attacker, victim = sample_pair rng topo in
    if attacker <> victim then begin
      let event =
        match kind with
        | Prefix_hijack ->
          (* the attacker originates the victim's prefix; the route
             propagates exactly like the attacker's own announcements *)
          Option.bind (victim_prefix rng topo victim) (fun prefix ->
              Option.map
                (fun path ->
                  { kind; attacker; victim; prefix; route = Rz_bgp.Route.make prefix path })
                (observer_path topo ~observer ~dest:attacker))
        | Forged_origin ->
          (* as above, but the attacker hides behind a forged origin *)
          Option.bind (victim_prefix rng topo victim) (fun prefix ->
              Option.map
                (fun path ->
                  { kind; attacker; victim; prefix;
                    route = Rz_bgp.Route.make prefix (path @ [ victim ]) })
                (observer_path topo ~observer ~dest:attacker))
        | Route_leak ->
          (* the attacker takes a route learned from a peer and re-exports
             it to a provider; the provider treats it as a customer route
             and it climbs from there *)
          (match (Rel_db.peers topo.rels attacker, Rel_db.providers topo.rels attacker) with
           | peer :: _, provider :: _ when peer <> victim ->
             (* the leaked route: the peer's best path to the victim *)
             let table = Propagate.best_routes topo ~dest:victim in
             Option.bind (Hashtbl.find_opt table peer)
               (fun (peer_best : Propagate.best) ->
                 Option.bind (victim_prefix rng topo victim) (fun prefix ->
                     (* path: observer .. provider, then attacker, then the
                        peer's path to the victim *)
                     Option.map
                       (fun head ->
                         let path = head @ (attacker :: peer_best.path) in
                         { kind; attacker; victim; prefix;
                           route = Rz_bgp.Route.make prefix path })
                       (observer_path topo ~observer ~dest:provider)))
           | _ -> None)
      in
      match event with
      | Some e ->
        (* drop degenerate paths (observer = attacker etc. create repeats) *)
        let path = Rz_bgp.Route.dedup_path e.route in
        let distinct = List.sort_uniq compare path in
        if List.length path >= 2 && List.length path = List.length distinct then
          events := e :: !events
      | None -> ()
    end
  done;
  List.rev !events
