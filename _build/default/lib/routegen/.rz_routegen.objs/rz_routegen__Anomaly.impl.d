lib/routegen/anomaly.ml: Array Hashtbl List Option Propagate Rz_asrel Rz_bgp Rz_net Rz_topology Rz_util
