lib/routegen/propagate.ml: Array Hashtbl List Printf Queue Rz_asrel Rz_bgp Rz_net Rz_topology Rz_util
