lib/routegen/propagate.mli: Hashtbl Rz_bgp Rz_net Rz_topology
