lib/routegen/anomaly.mli: Rz_bgp Rz_net Rz_topology
