(** Synthetic routing anomalies — the incident classes the paper's
    security discussion targets (route leaks, prefix hijacks, forged
    origins): "RPSL rules could inform route filters during upstream
    propagation to curtail route leaks and prefix hijacks" (§5.1.2).

    Each generator produces routes as a collector would observe them,
    alongside ground truth, so detection can be compared across RPSL
    verification, ROV, and ASPA. *)

type kind =
  | Prefix_hijack   (** the attacker originates the victim's prefix itself *)
  | Forged_origin   (** the attacker appends the victim's ASN as a fake origin *)
  | Route_leak      (** the attacker re-exports a peer-learned route to its provider *)

type event = {
  kind : kind;
  attacker : Rz_net.Asn.t;
  victim : Rz_net.Asn.t;       (** origin whose prefix/path is abused *)
  prefix : Rz_net.Prefix.t;
  route : Rz_bgp.Route.t;      (** as observed at a collector peer *)
}

val kind_to_string : kind -> string

val inject :
  ?seed:int ->
  Rz_topology.Gen.t ->
  observer:Rz_net.Asn.t ->
  n:int ->
  kind ->
  event list
(** Generate up to [n] anomalies of one kind, observed from collector peer
    [observer]. Attackers and victims are sampled from the topology;
    events whose propagation would not reach the observer are skipped, so
    fewer than [n] events may be returned. *)
