lib/synthirr/config.ml:
