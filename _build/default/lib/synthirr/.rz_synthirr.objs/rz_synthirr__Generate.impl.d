lib/synthirr/generate.ml: Array Buffer Config Hashtbl List Printf Rz_asrel Rz_net Rz_topology Rz_util String
