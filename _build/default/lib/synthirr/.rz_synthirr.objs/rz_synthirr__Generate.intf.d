lib/synthirr/generate.mli: Config Hashtbl Rz_net Rz_topology
