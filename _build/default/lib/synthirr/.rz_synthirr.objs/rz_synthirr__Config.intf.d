lib/synthirr/config.mli:
