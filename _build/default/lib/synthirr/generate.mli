(** Synthetic IRR generator: renders a topology's ground truth into RPSL
    text spread over the paper's 13 IRRs, through the lens of per-AS
    "personas" that reproduce the usage styles and misuses the paper
    measures. The output is consumed by the ordinary parsing pipeline, so
    every downstream result flows through real RPSL text. *)

type persona =
  | No_aut_num       (** AS absent from every IRR *)
  | No_rules         (** aut-num registered, no import/export *)
  | Regular          (** per-neighbor rules in the common styles *)
  | Only_provider    (** rules only toward providers *)
  | Any_any          (** [from AS-ANY accept ANY] (AS6939 style) *)
  | Complex          (** compound policies: regex, refine, communities *)

type profile = {
  asn : Rz_net.Asn.t;
  persona : persona;
  export_self : bool;      (** transit AS announcing only itself uphill *)
  import_customer : bool;  (** [from C accept C] with transit customer C *)
  uses_mp : bool;          (** writes mp- attributes with [afi any] *)
  has_route_set : bool;
  has_self_set : bool;     (** stub publishing a singleton self as-set *)
  home_irr : string;
  dropped_neighbors : Rz_net.Asn.t list;
      (** neighbors this (rule-writing) AS has no rules for *)
  mnt : string;
      (** the maintainer handle on this AS's objects; a few organizations
          run several ASNs under one handle (the sibling signal) *)
}

type world = {
  topo : Rz_topology.Gen.t;
  config : Config.t;
  profiles : (Rz_net.Asn.t, profile) Hashtbl.t;
  dumps : (string * string) list;
      (** (IRR name, RPSL text) in the paper's priority order *)
}

val irr_names : string list
(** The 13 IRR names in priority order (same as [Rz_irr.Db.priority_order];
    duplicated here to keep this library independent of the parser). *)

val generate : ?config:Config.t -> Rz_topology.Gen.t -> world

val profile_of : world -> Rz_net.Asn.t -> profile
val cone_set_name : Rz_net.Asn.t -> string
(** The customer-cone as-set name an AS publishes, e.g. ["AS1000:AS-CUST"]. *)

val route_set_name : Rz_net.Asn.t -> string
(** e.g. ["AS1000:RS-ROUTES"]. *)

val self_set_name : Rz_net.Asn.t -> string
(** e.g. ["AS1000:AS-SELF"] — the singleton sets some stubs publish. *)

val maintainer : Rz_net.Asn.t -> string
(** e.g. ["MNT-AS1000"]. *)
