type t = {
  seed : int;
  p_no_aut_num : float;
  p_no_rules : float;
  p_any_any : float;
  p_complex : float;
  p_only_provider : float;
  p_export_self : float;
  p_import_customer : float;
  p_neighbor_rule_missing : float;
  p_route_missing : float;
  p_route_stale_origin : float;
  p_route_foreign_mnt : float;
  p_as_set_member_missing : float;
  p_route_set_defined : float;
  p_singleton_set : float;
  p_filter_uses_route_set : float;
  p_dup_in_radb : float;
  p_mp_rules : float;
  n_empty_as_sets : int;
  n_loop_as_sets : int;
  n_any_member_sets : int;
  n_syntax_errors : int;
  n_invalid_set_names : int;
  n_deep_set_chains : int;
  n_peering_sets : int;
  n_filter_sets : int;
}

let default =
  { seed = 7;
    p_no_aut_num = 0.25;
    p_no_rules = 0.17;
    p_any_any = 0.02;
    p_complex = 0.035;
    p_only_provider = 0.01;
    p_export_self = 0.6;
    p_import_customer = 0.3;
    p_neighbor_rule_missing = 0.40;
    p_route_missing = 0.05;
    p_route_stale_origin = 0.15;
    p_route_foreign_mnt = 0.06;
    p_as_set_member_missing = 0.08;
    p_route_set_defined = 0.3;
    p_singleton_set = 0.12;
    p_filter_uses_route_set = 0.25;
    p_dup_in_radb = 0.06;
    p_mp_rules = 0.4;
    n_empty_as_sets = 25;
    n_loop_as_sets = 3;
    n_any_member_sets = 2;
    n_syntax_errors = 10;
    n_invalid_set_names = 3;
    n_deep_set_chains = 2;
    n_peering_sets = 4;
    n_filter_sets = 3 }
