(** Tunable mix of RPSL usage styles and misuses for the synthetic IRR.
    Defaults are calibrated to the population fractions the paper reports
    (Sections 4-5 and Appendix D), so the regenerated tables and figures
    reproduce the paper's shape. *)

type t = {
  seed : int;
  (* --- persona mix --- *)
  p_no_aut_num : float;      (** AS absent from every IRR (paper: 27.2% of
                                 BGP-visible ASes) *)
  p_no_rules : float;        (** aut-num present, zero rules (paper: 35.2%
                                 of aut-nums; 24.2% of ASes) *)
  p_any_any : float;         (** [from AS-ANY accept ANY] networks (AS6939 style) *)
  p_complex : float;         (** compound policies: regex, refine, communities *)
  p_only_provider : float;   (** transit ASes with rules only toward
                                 providers (paper: 0.44% of transit ASes) *)
  (* --- misuses (conditioned on the AS being transit) --- *)
  p_export_self : float;     (** [to P announce AS<self>] on transit ASes
                                 (paper: 64.4%) *)
  p_import_customer : float; (** [from C accept C] on transit ASes
                                 (paper: 29.8%) *)
  p_neighbor_rule_missing : float;
      (** a rule-writing AS nevertheless omits this neighbor — the
          "undeclared peering" that dominates the paper's unverified
          category (98.98% of unverified cases) *)
  (* --- object maintenance --- *)
  p_route_missing : float;   (** originated prefix with no route object *)
  p_route_stale_origin : float;  (** extra route object with a wrong origin *)
  p_route_foreign_mnt : float;   (** extra route object by another maintainer *)
  p_as_set_member_missing : float; (** cone member dropped from the as-set *)
  p_route_set_defined : float;     (** transit AS also defines a route-set *)
  p_singleton_set : float;         (** stub publishes a singleton self as-set,
                                       the unnecessary sets the paper counts
                                       (32.7% of as-sets have one member) *)
  p_filter_uses_route_set : float; (** filter written against the route-set *)
  p_dup_in_radb : float;     (** object also published in RADB *)
  (* --- v6 / mp usage --- *)
  p_mp_rules : float;        (** AS writes mp-import/mp-export with afi any *)
  (* --- deliberate anomalies (absolute counts) --- *)
  n_empty_as_sets : int;
  n_loop_as_sets : int;      (** pairs of mutually-referencing sets *)
  n_any_member_sets : int;   (** as-sets containing the reserved word ANY *)
  n_syntax_errors : int;     (** objects with injected malformed attributes *)
  n_invalid_set_names : int;
  n_deep_set_chains : int;   (** chains of depth >= 5 *)
  n_peering_sets : int;
  n_filter_sets : int;
}

val default : t
