type token =
  | Word of string
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Semicolon
  | Comma
  | Equals
  | Dot_equals
  | Regex of string

let token_to_string = function
  | Word w -> w
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lparen -> "("
  | Rparen -> ")"
  | Semicolon -> ";"
  | Comma -> ","
  | Equals -> "="
  | Dot_equals -> ".="
  | Regex r -> "<" ^ r ^ ">"

(* Word characters cover ASNs, set names (with ':' hierarchy and '-'),
   prefixes (dots, slashes), range operators attached to a word ('^', '+',
   '-'), community values ('65535:666'), and action values. *)
let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '.' || c = ':' || c = '/' || c = '-' || c = '_' || c = '^' || c = '+'
  || c = '*' || c = '?'

let tokenize input =
  let n = String.length input in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  let error = ref None in
  while !i < n && !error = None do
    let c = input.[!i] in
    match c with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '{' -> push Lbrace; incr i
    | '}' -> push Rbrace; incr i
    | '(' -> push Lparen; incr i
    | ')' -> push Rparen; incr i
    | ';' -> push Semicolon; incr i
    | ',' -> push Comma; incr i
    | '=' -> push Equals; incr i
    | '<' ->
      (match String.index_from_opt input !i '>' with
       | None -> error := Some "unterminated AS-path regex (missing >)"
       | Some close ->
         push (Regex (String.sub input (!i + 1) (close - !i - 1)));
         i := close + 1)
    | '.' when !i + 1 < n && input.[!i + 1] = '=' ->
      push Dot_equals;
      i := !i + 2
    | c when is_word_char c ->
      let start = !i in
      while
        !i < n && is_word_char input.[!i]
        && not (input.[!i] = '.' && !i + 1 < n && input.[!i + 1] = '=')
      do
        incr i
      done;
      push (Word (String.sub input start (!i - start)))
    | c -> error := Some (Printf.sprintf "unexpected character %C in policy text" c)
  done;
  match !error with
  | Some e -> Error e
  | None -> Ok (List.rev !toks)
