type community = int * int

type attrs = {
  local_pref : int option;
  med : int option;
  communities : community list;
  dpa : int option;
  prepends : Rz_net.Asn.t list;
}

let empty = { local_pref = None; med = None; communities = []; dpa = None; prepends = [] }

let pref_to_local_pref pref =
  let lp = 65535 - pref in
  if lp < 0 then 0 else if lp > 65535 then 65535 else lp

let parse_community text =
  let text = Rz_util.Strings.strip text in
  match Rz_util.Strings.uppercase text with
  | "NO_EXPORT" -> Ok (65535, 65281)
  | "NO_ADVERTISE" -> Ok (65535, 65282)
  | "NO_EXPORT_SUBCONFED" -> Ok (65535, 65283)
  | "BLACKHOLE" -> Ok (65535, 666)
  | "INTERNET" -> Ok (0, 0)
  | _ ->
    (match String.index_opt text ':' with
     | Some i ->
       let hi = String.sub text 0 i
       and lo = String.sub text (i + 1) (String.length text - i - 1) in
       (match (int_of_string_opt hi, int_of_string_opt lo) with
        | Some hi, Some lo when hi >= 0 && hi <= 65535 && lo >= 0 && lo <= 65535 ->
          Ok (hi, lo)
        | _ -> Error (Printf.sprintf "malformed community %S" text))
     | None -> Error (Printf.sprintf "malformed community %S" text))

let community_to_string (hi, lo) = Printf.sprintf "%d:%d" hi lo

let add_communities attrs values =
  let rec add acc = function
    | [] -> Ok (List.rev acc)
    | v :: rest ->
      (match parse_community v with
       | Error e -> Error e
       | Ok c -> add (if List.mem c acc then acc else c :: acc) rest)
  in
  match add (List.rev attrs.communities) values with
  | Ok communities -> Ok { attrs with communities }
  | Error e -> Error e

let delete_communities attrs values =
  let rec collect acc = function
    | [] -> Ok acc
    | v :: rest ->
      (match parse_community v with
       | Error e -> Error e
       | Ok c -> collect (c :: acc) rest)
  in
  match collect [] values with
  | Error e -> Error e
  | Ok to_delete ->
    Ok { attrs with communities = List.filter (fun c -> not (List.mem c to_delete)) attrs.communities }

let int_value attr text =
  match int_of_string_opt (Rz_util.Strings.strip text) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s expects an integer, got %S" attr text)

let apply_one attrs (action : Ast.action) =
  match action with
  | Ast.Assign (attr, value) ->
    (match Rz_util.Strings.lowercase attr with
     | "pref" ->
       (match int_value "pref" value with
        | Ok pref -> Ok { attrs with local_pref = Some (pref_to_local_pref pref) }
        | Error e -> Error e)
     | "med" ->
       if Rz_util.Strings.equal_ci (Rz_util.Strings.strip value) "igp_cost" then
         Ok { attrs with med = None }
       else
         (match int_value "med" value with
          | Ok med -> Ok { attrs with med = Some med }
          | Error e -> Error e)
     | "dpa" ->
       (match int_value "dpa" value with
        | Ok dpa -> Ok { attrs with dpa = Some dpa }
        | Error e -> Error e)
     | "community" ->
       (* community = 65000:1 — replace the whole list *)
       (match parse_community value with
        | Ok c -> Ok { attrs with communities = [ c ] }
        | Error e -> Error e)
     | other -> Error (Printf.sprintf "unknown action attribute %S" other))
  | Ast.Append_op (attr, values) ->
    (match Rz_util.Strings.lowercase attr with
     | "community" -> add_communities attrs values
     | other -> Error (Printf.sprintf "%S does not support append" other))
  | Ast.Method_call (attr, meth, args) ->
    (match (Rz_util.Strings.lowercase attr, Rz_util.Strings.lowercase meth) with
     | "community", "append" -> add_communities attrs args
     | "community", "delete" -> delete_communities attrs args
     | "community", "=" -> add_communities { attrs with communities = [] } args
     | "aspath", "prepend" ->
       let rec parse acc = function
         | [] -> Ok (List.rev acc)
         | a :: rest ->
           (match Rz_net.Asn.of_string a with
            | Ok asn -> parse (asn :: acc) rest
            | Error e -> Error e)
       in
       (match parse [] args with
        | Ok asns -> Ok { attrs with prepends = attrs.prepends @ asns }
        | Error e -> Error e)
     | "community", "contains" ->
       Error "community.contains is a filter predicate, not an action"
     | attr, meth -> Error (Printf.sprintf "unknown action method %s.%s" attr meth))

let apply actions attrs =
  List.fold_left
    (fun acc action -> Result.bind acc (fun attrs -> apply_one attrs action))
    (Ok attrs) actions

let apply_rule_actions (rule : Ast.rule) attrs =
  let actions =
    List.concat_map
      (fun (term : Ast.term) ->
        List.concat_map
          (fun (factor : Ast.factor) ->
            List.concat_map (fun (pa : Ast.peering_action) -> pa.actions) factor.peerings)
          term.factors)
      (Ast.expr_terms rule.expr)
  in
  apply actions attrs
