(** Recursive-descent parser for RPSL policy attributes.

    Entry points correspond to attribute kinds: whole [import]/[export]
    rules, standalone filters ([filter-set]'s [filter:] attribute),
    peerings ([peering-set]'s [peering:] attribute), and member lists.

    All keywords are case-insensitive. Errors are returned, not raised —
    the caller (IR lowering) records them as the paper's "syntax errors"
    statistic and continues. *)

val parse_rule :
  direction:[ `Import | `Export ] ->
  multiprotocol:bool ->
  string ->
  (Ast.rule, string) result
(** Parse the value of an [import:]/[export:]/[mp-import:]/[mp-export:]
    attribute (everything after the colon). *)

val parse_default :
  multiprotocol:bool -> string -> (Ast.default_rule, string) result
(** Parse a [default:]/[mp-default:] attribute value:
    [to <peering> [action ...] [networks <filter>]]. *)

val parse_filter : string -> (Ast.filter, string) result
(** Parse a standalone filter expression. *)

val parse_peering : string -> (Ast.peering, string) result
(** Parse a standalone peering definition. *)

val parse_members : string -> string list
(** Split a [members:]/[mp-members:] value into member names (comma and/or
    whitespace separated — both appear in the wild). *)

val parse_as_expr : string -> (Ast.as_expr, string) result
(** Parse an AS expression, e.g. for tests. *)
