type as_expr =
  | Asn of Rz_net.Asn.t
  | As_set of string
  | Any_as
  | And of as_expr * as_expr
  | Or of as_expr * as_expr
  | Except_as of as_expr * as_expr

type router_expr =
  | Rtr_addr of string
  | Rtr_name of string
  | Rtr_set of string
  | Rtr_and of router_expr * router_expr
  | Rtr_or of router_expr * router_expr
  | Rtr_except of router_expr * router_expr

type peering =
  | Peering_set_ref of string
  | Peering_spec of {
      as_expr : as_expr;
      remote_router : router_expr option;
      local_router : router_expr option;
    }

type action =
  | Assign of string * string
  | Append_op of string * string list
  | Method_call of string * string * string list

type filter =
  | Any
  | Peer_as_filter
  | As_num of Rz_net.Asn.t * Rz_net.Range_op.t
  | As_set_ref of string * Rz_net.Range_op.t
  | Route_set_ref of string * Rz_net.Range_op.t
  | Filter_set_ref of string
  | Prefix_set of (Rz_net.Prefix.t * Rz_net.Range_op.t) list * Rz_net.Range_op.t
  | Path_regex of Rz_aspath.Regex_ast.t
  | Community of string * string list
  | Fltr_martian
  | And_f of filter * filter
  | Or_f of filter * filter
  | Not_f of filter

type peering_action = { peering : peering; actions : action list }
type factor = { peerings : peering_action list; filter : filter }
type term = { afi : Rz_net.Afi.t list; factors : factor list }

type expr =
  | Term_e of term
  | Except_e of term * expr
  | Refine_e of term * expr

type default_rule = {
  peering : peering;
  actions : action list;
  networks : filter option;
  multiprotocol : bool;
  afi : Rz_net.Afi.t list;
}

type rule = {
  direction : [ `Import | `Export ];
  multiprotocol : bool;
  protocol : string option;
  into_protocol : string option;
  expr : expr;
}

let pref_of_actions actions =
  List.fold_left
    (fun acc a ->
      match a with
      | Assign (key, v) when Rz_util.Strings.equal_ci key "pref" -> int_of_string_opt v
      | _ -> acc)
    None actions

let rec as_expr_to_string = function
  | Asn n -> Rz_net.Asn.to_string n
  | As_set s -> s
  | Any_as -> "AS-ANY"
  | And (a, b) -> Printf.sprintf "(%s AND %s)" (as_expr_to_string a) (as_expr_to_string b)
  | Or (a, b) -> Printf.sprintf "(%s OR %s)" (as_expr_to_string a) (as_expr_to_string b)
  | Except_as (a, b) ->
    Printf.sprintf "(%s EXCEPT %s)" (as_expr_to_string a) (as_expr_to_string b)

let rec router_expr_to_string = function
  | Rtr_addr a -> a
  | Rtr_name n -> n
  | Rtr_set s -> s
  | Rtr_and (a, b) ->
    Printf.sprintf "(%s AND %s)" (router_expr_to_string a) (router_expr_to_string b)
  | Rtr_or (a, b) ->
    Printf.sprintf "(%s OR %s)" (router_expr_to_string a) (router_expr_to_string b)
  | Rtr_except (a, b) ->
    Printf.sprintf "(%s EXCEPT %s)" (router_expr_to_string a) (router_expr_to_string b)

let peering_to_string = function
  | Peering_set_ref name -> name
  | Peering_spec { as_expr; remote_router; local_router } ->
    String.concat ""
      [ as_expr_to_string as_expr;
        (match remote_router with Some r -> " " ^ router_expr_to_string r | None -> "");
        (match local_router with Some r -> " at " ^ router_expr_to_string r | None -> "") ]

let action_to_string = function
  | Assign (k, v) -> Printf.sprintf "%s = %s" k v
  | Append_op (k, vs) -> Printf.sprintf "%s .= {%s}" k (String.concat ", " vs)
  | Method_call (attr, meth, args) ->
    Printf.sprintf "%s.%s(%s)" attr meth (String.concat ", " args)

let member_to_string (p, op) =
  Rz_net.Prefix.to_string p ^ Rz_net.Range_op.to_string op

let rec filter_to_string = function
  | Any -> "ANY"
  | Peer_as_filter -> "PeerAS"
  | As_num (n, op) -> Rz_net.Asn.to_string n ^ Rz_net.Range_op.to_string op
  | As_set_ref (s, op) -> s ^ Rz_net.Range_op.to_string op
  | Route_set_ref (s, op) -> s ^ Rz_net.Range_op.to_string op
  | Filter_set_ref s -> s
  | Prefix_set (members, op) ->
    Printf.sprintf "{%s}%s"
      (String.concat ", " (List.map member_to_string members))
      (Rz_net.Range_op.to_string op)
  | Path_regex r -> Printf.sprintf "<%s>" (Rz_aspath.Regex_ast.to_string r)
  | Community (meth, args) ->
    if meth = "" then Printf.sprintf "community(%s)" (String.concat ", " args)
    else Printf.sprintf "community.%s(%s)" meth (String.concat ", " args)
  | Fltr_martian -> "fltr-martian"
  | And_f (a, b) -> Printf.sprintf "(%s AND %s)" (filter_to_string a) (filter_to_string b)
  | Or_f (a, b) -> Printf.sprintf "(%s OR %s)" (filter_to_string a) (filter_to_string b)
  | Not_f a -> Printf.sprintf "NOT %s" (filter_to_string a)

let factor_to_string ~keyword ~verb (f : factor) =
  let pa (pa : peering_action) =
    Printf.sprintf "%s %s%s" keyword
      (peering_to_string pa.peering)
      (match pa.actions with
       | [] -> ""
       | acts ->
         " action " ^ String.concat "; " (List.map action_to_string acts) ^ ";")
  in
  Printf.sprintf "%s %s %s"
    (String.concat " " (List.map pa f.peerings))
    verb (filter_to_string f.filter)

let term_to_string ~keyword ~verb (t : term) =
  let afi_prefix =
    match t.afi with
    | [] -> ""
    | afis ->
      "afi " ^ String.concat ", " (List.map Rz_net.Afi.to_string afis) ^ " "
  in
  match t.factors with
  | [ single ] -> afi_prefix ^ factor_to_string ~keyword ~verb single
  | factors ->
    afi_prefix ^ "{ "
    ^ String.concat "; " (List.map (factor_to_string ~keyword ~verb) factors)
    ^ "; }"

let rec expr_to_string ~keyword ~verb = function
  | Term_e t -> term_to_string ~keyword ~verb t
  | Except_e (t, rest) ->
    term_to_string ~keyword ~verb t ^ " EXCEPT " ^ expr_to_string ~keyword ~verb rest
  | Refine_e (t, rest) ->
    term_to_string ~keyword ~verb t ^ " REFINE " ^ expr_to_string ~keyword ~verb rest

let default_rule_to_string (d : default_rule) =
  let attr = if d.multiprotocol then "mp-default" else "default" in
  let afi_prefix =
    match d.afi with
    | [] -> ""
    | afis -> "afi " ^ String.concat ", " (List.map Rz_net.Afi.to_string afis) ^ " "
  in
  String.concat ""
    [ attr; ": "; afi_prefix; "to "; peering_to_string d.peering;
      (match d.actions with
       | [] -> ""
       | acts -> " action " ^ String.concat "; " (List.map action_to_string acts) ^ ";");
      (match d.networks with
       | None -> ""
       | Some f -> " networks " ^ filter_to_string f) ]

let rule_to_string rule =
  let keyword, verb =
    match rule.direction with `Import -> ("from", "accept") | `Export -> ("to", "announce")
  in
  let attr =
    match (rule.direction, rule.multiprotocol) with
    | `Import, false -> "import"
    | `Import, true -> "mp-import"
    | `Export, false -> "export"
    | `Export, true -> "mp-export"
  in
  let protocol =
    match rule.protocol with Some p -> Printf.sprintf "protocol %s " p | None -> ""
  in
  let into =
    match rule.into_protocol with Some p -> Printf.sprintf "into %s " p | None -> ""
  in
  Printf.sprintf "%s: %s%s%s" attr protocol into (expr_to_string ~keyword ~verb rule.expr)

let rec expr_terms = function
  | Term_e t -> [ t ]
  | Except_e (t, rest) | Refine_e (t, rest) -> t :: expr_terms rest
