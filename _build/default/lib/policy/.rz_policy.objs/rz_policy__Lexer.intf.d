lib/policy/lexer.mli:
