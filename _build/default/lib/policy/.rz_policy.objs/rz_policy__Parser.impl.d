lib/policy/parser.ml: Ast Lexer List Printf Result Rz_aspath Rz_net Rz_rpsl Rz_util String
