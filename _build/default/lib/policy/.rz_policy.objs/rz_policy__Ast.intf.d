lib/policy/ast.mli: Rz_aspath Rz_net
