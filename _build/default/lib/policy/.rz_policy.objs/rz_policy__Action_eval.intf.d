lib/policy/action_eval.mli: Ast Rz_net
