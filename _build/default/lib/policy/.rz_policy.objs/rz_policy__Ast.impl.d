lib/policy/ast.ml: List Printf Rz_aspath Rz_net Rz_util String
