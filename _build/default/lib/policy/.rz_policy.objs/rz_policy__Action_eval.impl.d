lib/policy/action_eval.ml: Ast List Printf Result Rz_net Rz_util String
