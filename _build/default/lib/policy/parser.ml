open Ast

exception Err of string

type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let peek_word st =
  match peek st with Some (Lexer.Word w) -> Some w | _ -> None

let is_kw st kw =
  match peek_word st with
  | Some w -> Rz_util.Strings.equal_ci w kw
  | None -> false

let eat_kw st kw =
  if is_kw st kw then begin advance st; true end else false

let expect st tok msg =
  match peek st with
  | Some t when t = tok -> advance st
  | _ -> raise (Err msg)

let keywords =
  [ "from"; "to"; "action"; "accept"; "announce"; "except"; "refine"; "at";
    "and"; "or"; "not"; "afi"; "protocol"; "into"; "networks" ]

let is_keyword w = List.exists (Rz_util.Strings.equal_ci w) keywords

(* Split a trailing prefix-range operator off a word: "AS-FOO^+" ->
   ("AS-FOO", Plus). *)
let split_range_op word =
  match String.index_opt word '^' with
  | None -> (word, Rz_net.Range_op.None_)
  | Some i ->
    let base = String.sub word 0 i in
    let op_text = String.sub word i (String.length word - i) in
    (match Rz_net.Range_op.parse op_text with
     | Ok op -> (base, op)
     | Error e -> raise (Err e))

let word_is_asn w =
  Rz_util.Strings.starts_with_ci ~prefix:"AS" w && Result.is_ok (Rz_net.Asn.of_string w)

(* ---------------- AS expressions (peerings) ---------------- *)

let rec parse_as_expr_prec st =
  let left = parse_as_term st in
  parse_as_rest st left

and parse_as_rest st left =
  if eat_kw st "and" then parse_as_rest st (And (left, parse_as_term st))
  else if eat_kw st "or" then parse_as_rest st (Or (left, parse_as_term st))
  else if eat_kw st "except" then
    (* EXCEPT binds the rest of the as-expression on the right, matching
       the paper's AS199284 example. *)
    Except_as (left, parse_as_expr_prec st)
  else left

and parse_as_term st =
  match peek st with
  | Some Lexer.Lparen ->
    advance st;
    let inner = parse_as_expr_prec st in
    expect st Lexer.Rparen "expected ) in AS expression";
    inner
  | Some (Lexer.Word w) when not (is_keyword w) ->
    advance st;
    if Rz_util.Strings.equal_ci w "AS-ANY" then Any_as
    else if word_is_asn w then Asn (Rz_net.Asn.of_string_exn w)
    else if Rz_rpsl.Set_name.is_valid Rz_rpsl.Set_name.As_set w then As_set w
    else raise (Err (Printf.sprintf "invalid AS expression term %S" w))
  | Some t -> raise (Err ("unexpected token in AS expression: " ^ Lexer.token_to_string t))
  | None -> raise (Err "truncated AS expression")

(* ---------------- Peerings ---------------- *)

let peering_stop_words = [ "action"; "accept"; "announce"; "from"; "to"; "except"; "refine" ]
let is_peering_stop st =
  match peek_word st with
  | Some w -> List.exists (Rz_util.Strings.equal_ci w) peering_stop_words
  | None -> (match peek st with Some (Lexer.Semicolon | Lexer.Rbrace) | None -> true | _ -> false)

(* Router expressions (RFC 2622 §5.6): addresses, inet-rtr names, rtrs-
   sets, combined with AND/OR/EXCEPT. A lone word classifies by shape:
   parseable address -> Rtr_addr; rtrs- prefix -> Rtr_set; otherwise an
   inet-rtr name. *)
let classify_router_word w =
  if Result.is_ok (Rz_net.Ipaddr.V4.of_string w) || Result.is_ok (Rz_net.Ipaddr.V6.of_string w)
  then Rtr_addr w
  else if Rz_util.Strings.starts_with_ci ~prefix:"RTRS-" w then Rtr_set w
  else Rtr_name w

let rec parse_router_expr st =
  let left = parse_router_term st in
  if eat_kw st "and" then Rtr_and (left, parse_router_expr st)
  else if eat_kw st "or" then Rtr_or (left, parse_router_expr st)
  else if eat_kw st "except" then Rtr_except (left, parse_router_expr st)
  else left

and parse_router_term st =
  match peek st with
  | Some Lexer.Lparen ->
    advance st;
    let inner = parse_router_expr st in
    expect st Lexer.Rparen "expected ) in router expression";
    inner
  | Some (Lexer.Word w) when not (is_keyword w) ->
    advance st;
    classify_router_word w
  | Some t -> raise (Err ("unexpected token in router expression: " ^ Lexer.token_to_string t))
  | None -> raise (Err "truncated router expression")

let parse_router_opt st =
  if is_peering_stop st || is_kw st "at" then None
  else
    match peek st with
    | Some (Lexer.Word _) | Some Lexer.Lparen -> Some (parse_router_expr st)
    | _ -> None

let parse_peering_expr st =
  match peek_word st with
  | Some w
    when (not (is_keyword w))
         && Rz_rpsl.Set_name.classify w = Some Rz_rpsl.Set_name.Peering_set ->
    advance st;
    Peering_set_ref w
  | _ ->
    let as_expr = parse_as_expr_prec st in
    let remote_router = parse_router_opt st in
    let local_router =
      if eat_kw st "at" then Some (parse_router_expr st) else None
    in
    Peering_spec { as_expr; remote_router; local_router }

(* ---------------- Actions ---------------- *)

let action_value_tokens st =
  (* Consume tokens of an action RHS until ';' or a structural keyword. *)
  let buf = ref [] in
  let rec go () =
    match peek st with
    | Some Lexer.Semicolon | None -> ()
    | Some (Lexer.Word w) when is_keyword w -> ()
    | Some t ->
      advance st;
      buf := Lexer.token_to_string t :: !buf;
      go ()
  in
  go ();
  String.concat " " (List.rev !buf)

let parse_call_args st =
  expect st Lexer.Lparen "expected ( in action call";
  let rec go acc =
    match peek st with
    | Some Lexer.Rparen -> advance st; List.rev acc
    | Some Lexer.Comma -> advance st; go acc
    | Some t -> advance st; go (Lexer.token_to_string t :: acc)
    | None -> raise (Err "unterminated action call")
  in
  go []

let parse_brace_values st =
  expect st Lexer.Lbrace "expected { in action value";
  let rec go acc =
    match peek st with
    | Some Lexer.Rbrace -> advance st; List.rev acc
    | Some Lexer.Comma -> advance st; go acc
    | Some t -> advance st; go (Lexer.token_to_string t :: acc)
    | None -> raise (Err "unterminated { } value")
  in
  go []

let parse_one_action st =
  match peek st with
  | Some (Lexer.Word w) when not (is_keyword w) ->
    advance st;
    (match peek st with
     | Some Lexer.Lparen ->
       (* attr.method(args) — split the word at its last dot *)
       let attr, meth =
         match String.rindex_opt w '.' with
         | Some i ->
           (String.sub w 0 i, String.sub w (i + 1) (String.length w - i - 1))
         | None -> (w, "")
       in
       let args = parse_call_args st in
       Method_call (attr, meth, args)
     | Some Lexer.Equals ->
       advance st;
       (match peek st with
        | Some Lexer.Lbrace -> Append_op (w, parse_brace_values st)
        | _ -> Assign (w, action_value_tokens st))
     | Some Lexer.Dot_equals ->
       advance st;
       (match peek st with
        | Some Lexer.Lbrace -> Append_op (w, parse_brace_values st)
        | _ -> Append_op (w, [ action_value_tokens st ]))
     | _ -> raise (Err (Printf.sprintf "malformed action after %S" w)))
  | Some t -> raise (Err ("unexpected token in action: " ^ Lexer.token_to_string t))
  | None -> raise (Err "truncated action")

let parse_actions st =
  (* action a1; a2; ... ; — terminated by accept/announce/from/to. *)
  let rec go acc =
    match peek st with
    | Some (Lexer.Word w) when is_keyword w -> List.rev acc
    | Some Lexer.Semicolon -> advance st; go acc
    | None | Some Lexer.Rbrace -> List.rev acc
    | Some _ -> go (parse_one_action st :: acc)
  in
  go []

(* ---------------- Filters ---------------- *)

let rec parse_filter_expr st =
  let left = parse_filter_and st in
  if eat_kw st "or" then Or_f (left, parse_filter_expr st) else left

and parse_filter_and st =
  let left = parse_filter_not st in
  if eat_kw st "and" then And_f (left, parse_filter_and st) else left

and parse_filter_not st =
  if eat_kw st "not" then Not_f (parse_filter_not st) else parse_filter_primary st

and parse_filter_primary st =
  match peek st with
  | Some Lexer.Lparen ->
    advance st;
    let inner = parse_filter_expr st in
    expect st Lexer.Rparen "expected ) in filter";
    inner
  | Some Lexer.Lbrace ->
    advance st;
    let members = parse_prefix_members st in
    let op =
      match peek_word st with
      | Some w when String.length w > 0 && w.[0] = '^' ->
        advance st;
        (match Rz_net.Range_op.parse w with Ok op -> op | Error e -> raise (Err e))
      | _ -> Rz_net.Range_op.None_
    in
    Prefix_set (members, op)
  | Some (Lexer.Regex text) ->
    advance st;
    (match Rz_aspath.Regex_parse.parse text with
     | Ok ast -> Path_regex ast
     | Error e -> raise (Err ("bad AS-path regex: " ^ e)))
  | Some (Lexer.Word w) when not (is_keyword w) ->
    advance st;
    parse_filter_word st w
  | Some t -> raise (Err ("unexpected token in filter: " ^ Lexer.token_to_string t))
  | None -> raise (Err "truncated filter")

and parse_prefix_members st =
  let rec go acc =
    match peek st with
    | Some Lexer.Rbrace -> advance st; List.rev acc
    | Some Lexer.Comma -> advance st; go acc
    | Some (Lexer.Word w) ->
      advance st;
      let base, op = split_range_op w in
      (match Rz_net.Prefix.of_string base with
       | Ok p -> go ((p, op) :: acc)
       | Error e -> raise (Err e))
    | Some t -> raise (Err ("unexpected token in prefix set: " ^ Lexer.token_to_string t))
    | None -> raise (Err "unterminated prefix set")
  in
  go []

and parse_filter_word st w =
  let upper = Rz_util.Strings.uppercase w in
  if upper = "ANY" || upper = "AS-ANY" || upper = "RS-ANY" then Any
  else if Rz_util.Strings.equal_ci w "PeerAS" then Peer_as_filter
  else if Rz_util.Strings.equal_ci w "fltr-martian" then Fltr_martian
  else if Rz_util.Strings.starts_with_ci ~prefix:"community" w then begin
    let meth =
      match String.index_opt w '.' with
      | Some i -> String.sub w (i + 1) (String.length w - i - 1)
      | None -> ""
    in
    match peek st with
    | Some Lexer.Lparen -> Community (meth, parse_call_args st)
    | Some Lexer.Lbrace -> Community (meth, parse_brace_values st)
    | _ -> raise (Err "community filter without arguments")
  end
  else begin
    let base, op = split_range_op w in
    if word_is_asn base then As_num (Rz_net.Asn.of_string_exn base, op)
    else
      match Rz_rpsl.Set_name.classify base with
      | Some Rz_rpsl.Set_name.As_set when Rz_rpsl.Set_name.is_valid As_set base ->
        As_set_ref (base, op)
      | Some Rz_rpsl.Set_name.Route_set when Rz_rpsl.Set_name.is_valid Route_set base ->
        Route_set_ref (base, op)
      | Some Rz_rpsl.Set_name.Filter_set when Rz_rpsl.Set_name.is_valid Filter_set base ->
        if op = Rz_net.Range_op.None_ then Filter_set_ref base
        else raise (Err "range operator cannot apply to a filter-set")
      | _ ->
        (* A bare prefix is also a valid (degenerate) filter term. *)
        (match Rz_net.Prefix.of_string base with
         | Ok p -> Prefix_set ([ (p, op) ], Rz_net.Range_op.None_)
         | Error _ -> raise (Err (Printf.sprintf "invalid filter keyword %S" w)))
  end

(* ---------------- Factors / terms / expressions ---------------- *)

let parse_factor ~direction st =
  let peering_kw = match direction with `Import -> "from" | `Export -> "to" in
  let verb_kw = match direction with `Import -> "accept" | `Export -> "announce" in
  let rec peering_actions acc =
    if eat_kw st peering_kw then begin
      let peering = parse_peering_expr st in
      let actions = if eat_kw st "action" then parse_actions st else [] in
      peering_actions ({ peering; actions } :: acc)
    end
    else List.rev acc
  in
  let peerings = peering_actions [] in
  if peerings = [] then
    raise (Err (Printf.sprintf "expected %S clause" peering_kw));
  if not (eat_kw st verb_kw) then
    raise (Err (Printf.sprintf "expected %S keyword" verb_kw));
  let filter = parse_filter_expr st in
  ignore (match peek st with Some Lexer.Semicolon -> advance st | _ -> ());
  { peerings; filter }

let parse_afi_list st =
  (* afi ipv4.unicast, ipv6.unicast *)
  let rec words acc =
    match peek st with
    | Some (Lexer.Word w) when not (is_keyword w) ->
      advance st;
      let acc = w :: acc in
      (match peek st with
       | Some Lexer.Comma -> advance st; words acc
       | _ -> List.rev acc)
    | _ -> List.rev acc
  in
  let names = words [] in
  List.map
    (fun name ->
      match Rz_net.Afi.parse name with
      | Ok afi -> afi
      | Error e -> raise (Err e))
    names

let parse_term ~direction st =
  let afi = if eat_kw st "afi" then parse_afi_list st else [] in
  match peek st with
  | Some Lexer.Lbrace ->
    advance st;
    let rec factors acc =
      match peek st with
      | Some Lexer.Rbrace -> advance st; List.rev acc
      | Some Lexer.Semicolon -> advance st; factors acc
      | Some _ -> factors (parse_factor ~direction st :: acc)
      | None -> raise (Err "unterminated { } policy term")
    in
    (match factors [] with
     | [] -> raise (Err "empty { } policy term")
     | parsed -> { afi; factors = parsed })
  | _ -> { afi; factors = [ parse_factor ~direction st ] }

let rec parse_expr ~direction st =
  let term = parse_term ~direction st in
  if eat_kw st "except" then Except_e (term, parse_expr ~direction st)
  else if eat_kw st "refine" then Refine_e (term, parse_expr ~direction st)
  else Term_e term

(* ---------------- Entry points ---------------- *)

let run text f =
  match Lexer.tokenize text with
  | Error e -> Error e
  | Ok toks ->
    let st = { toks } in
    (match f st with
     | result ->
       (match st.toks with
        | [] -> Ok result
        | t :: _ ->
          Error (Printf.sprintf "trailing tokens after policy: %s" (Lexer.token_to_string t)))
     | exception Err msg -> Error msg)

let parse_rule ~direction ~multiprotocol text =
  run text (fun st ->
      let protocol =
        if eat_kw st "protocol" then
          match peek st with
          | Some (Lexer.Word w) -> advance st; Some w
          | _ -> raise (Err "expected protocol name")
        else None
      in
      let into_protocol =
        if eat_kw st "into" then
          match peek st with
          | Some (Lexer.Word w) -> advance st; Some w
          | _ -> raise (Err "expected protocol name after into")
        else None
      in
      let expr = parse_expr ~direction st in
      { direction; multiprotocol; protocol; into_protocol; expr })

let parse_default ~multiprotocol text =
  run text (fun st ->
      let afi = if eat_kw st "afi" then parse_afi_list st else [] in
      if not (eat_kw st "to") then raise (Err "expected \"to\" in default");
      let peering = parse_peering_expr st in
      let actions = if eat_kw st "action" then parse_actions st else [] in
      let networks =
        if eat_kw st "networks" then Some (parse_filter_expr st) else None
      in
      { Ast.peering; actions; networks; multiprotocol; afi })

let parse_filter text = run text parse_filter_expr
let parse_peering text = run text parse_peering_expr
let parse_as_expr text = run text parse_as_expr_prec

let parse_members text =
  (* Members lists are comma-separated; stray whitespace separation also
     appears in the wild, so we accept both. *)
  String.split_on_char ',' text
  |> List.concat_map Rz_util.Strings.split_words
  |> List.filter (fun w -> w <> "")
