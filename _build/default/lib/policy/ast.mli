(** Abstract syntax of RPSL routing policies (RFC 2622 §5-6, RFC 4012):
    peering expressions, actions, filters, and structured import/export
    expressions with [refine] / [except]. This is the shape the paper's IR
    captures per rule. *)

(** AS expressions appearing in peerings: [AS1], [AS-FOO],
    [AS1 OR AS2 EXCEPT AS3], [AS-ANY]. *)
type as_expr =
  | Asn of Rz_net.Asn.t
  | As_set of string
  | Any_as                       (** the [AS-ANY] keyword *)
  | And of as_expr * as_expr
  | Or of as_expr * as_expr
  | Except_as of as_expr * as_expr

(** Router expressions qualifying a peering (RFC 2622 §5.6): literal
    router addresses, [inet-rtr] names, [rtrs-] router sets, and the
    usual AND/OR/EXCEPT combinations. *)
type router_expr =
  | Rtr_addr of string               (** an IPv4/IPv6 interface address *)
  | Rtr_name of string               (** an inet-rtr DNS-style name *)
  | Rtr_set of string                (** an [rtrs-] set name *)
  | Rtr_and of router_expr * router_expr
  | Rtr_or of router_expr * router_expr
  | Rtr_except of router_expr * router_expr

(** A peering: either a reference to a [peering-set] object or an AS
    expression optionally qualified by router expressions (which the
    engine parses and retains but — like the paper — does not use to
    discriminate sessions, since BGP dumps carry no router identity). *)
type peering =
  | Peering_set_ref of string
  | Peering_spec of {
      as_expr : as_expr;
      remote_router : router_expr option;
      local_router : router_expr option;  (** after [at] *)
    }

(** One action in an [action] clause. *)
type action =
  | Assign of string * string               (** [pref = 200], [med = 10] *)
  | Append_op of string * string list       (** [community .= {64628:20}] *)
  | Method_call of string * string * string list
      (** [community.delete(a, b)] = attribute, method, args *)

(** Filters (RFC 2622 §5.4). Set references carry an optional prefix-range
    operator; the paper explicitly supports the non-standard but common
    [route-set^n] / [route-set^n-m] syntax, as we do for every reference. *)
type filter =
  | Any                                      (** [ANY] *)
  | Peer_as_filter                           (** [PeerAS] *)
  | As_num of Rz_net.Asn.t * Rz_net.Range_op.t
  | As_set_ref of string * Rz_net.Range_op.t
  | Route_set_ref of string * Rz_net.Range_op.t
  | Filter_set_ref of string
  | Prefix_set of (Rz_net.Prefix.t * Rz_net.Range_op.t) list * Rz_net.Range_op.t
      (** [{10.0.0.0/8^+, ...}^24-32]: per-member operators plus an
          optional operator applied to the whole set *)
  | Path_regex of Rz_aspath.Regex_ast.t      (** [<^AS1 AS2+$>] *)
  | Community of string * string list        (** [community(65535:666)] or
                                                 [community.contains(...)]: method name, args *)
  | Fltr_martian                             (** the [fltr-martian] built-in *)
  | And_f of filter * filter
  | Or_f of filter * filter
  | Not_f of filter

(** A peering together with its (optional) action clause. *)
type peering_action = { peering : peering; actions : action list }

(** [<peering-action-list> accept|announce <filter>] — possibly with
    several [from]/[to] clauses sharing one filter (the AS8323 example in
    the paper's Appendix A). *)
type factor = { peerings : peering_action list; filter : filter }

(** A term: an optional per-term [afi] list and one or more factors
    (braced factor lists in structured policies). *)
type term = { afi : Rz_net.Afi.t list; factors : factor list }

(** Structured policy expression (RFC 2622 §6.6). *)
type expr =
  | Term_e of term
  | Except_e of term * expr
  | Refine_e of term * expr

(** A [default:]/[mp-default:] attribute (RFC 2622 §6.5): the peering to
    fall back to when no other route is available, with optional actions
    and a [networks] filter bounding the prefixes the default covers. *)
type default_rule = {
  peering : peering;
  actions : action list;
  networks : filter option;
  multiprotocol : bool;
  afi : Rz_net.Afi.t list;
}

(** A whole [import]/[export] (or [mp-import]/[mp-export]) attribute. *)
type rule = {
  direction : [ `Import | `Export ];
  multiprotocol : bool;       (** came from an mp- attribute *)
  protocol : string option;   (** [protocol BGP4] prefix *)
  into_protocol : string option;
  expr : expr;
}

val pref_of_actions : action list -> int option
(** The [pref] value assigned by the action list, when present and
    numeric. *)

val router_expr_to_string : router_expr -> string
val filter_to_string : filter -> string
val peering_to_string : peering -> string
val as_expr_to_string : as_expr -> string
val action_to_string : action -> string
val default_rule_to_string : default_rule -> string
val rule_to_string : rule -> string
(** Render back to RPSL-ish text (canonical spacing); used by the JSON
    export, error messages, and round-trip tests. *)

val expr_terms : expr -> term list
(** All terms of a structured expression in syntactic order. *)
