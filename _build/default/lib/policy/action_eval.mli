(** Interpretation of rule [action] clauses (RFC 2622 §6): given a route's
    BGP attributes, compute the attributes after applying an action list.

    Noteworthy semantics the paper calls out (its footnote 5): RPSL [pref]
    is the {e complement} of BGP LocalPref — [LocalPref = 65535 - pref] —
    so {e lower} pref means more preferred, the opposite of LocalPref.
    Operators unaware of this inversion write rules that do the reverse of
    what they intend; {!apply} implements the RFC faithfully and
    {!pref_to_local_pref} makes the conversion explicit. *)

type community = int * int
(** [(asn, value)] pair, e.g. [(65535, 666)] for BLACKHOLE. *)

type attrs = {
  local_pref : int option;
  med : int option;
  communities : community list;   (** insertion order, deduplicated *)
  dpa : int option;
  prepends : Rz_net.Asn.t list;   (** ASNs prepended by [aspath.prepend] *)
}

val empty : attrs

val pref_to_local_pref : int -> int
(** [65535 - pref], clamped to [0, 65535]. *)

val parse_community : string -> (community, string) result
(** Accepts ["65000:120"] and the RFC 1997 well-known names
    [NO_EXPORT], [NO_ADVERTISE], [NO_EXPORT_SUBCONFED], plus [BLACKHOLE]
    (RFC 7999). *)

val community_to_string : community -> string

val apply : Ast.action list -> attrs -> (attrs, string) result
(** Apply the actions left to right. Supported: [pref=], [med=] (numeric or
    the keyword [igp_cost], which clears the attribute), [dpa=],
    [community=] / [community.={...}] (replace / append),
    [community.append(...)], [community.delete(...)],
    [aspath.prepend(...)]. Unknown attributes or methods are errors
    (callers typically surface them as RPSL mistakes). *)

val apply_rule_actions : Ast.rule -> attrs -> (attrs, string) result
(** Apply every action of every factor of a rule, in syntactic order —
    a convenience for single-peering rules. *)
