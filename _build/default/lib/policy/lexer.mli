(** Tokenizer for policy attribute values ([import], [export], [peering],
    [filter], [members] and friends). Newlines from continuation folding
    are treated as spaces; an AS-path regex between [<] and [>] is captured
    as one token. *)

type token =
  | Word of string   (** names, ASNs, prefixes, numbers, communities *)
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Semicolon
  | Comma
  | Equals
  | Dot_equals       (** the [.=] append operator *)
  | Regex of string  (** contents between [<] and [>] *)

val tokenize : string -> (token list, string) result

val token_to_string : token -> string
