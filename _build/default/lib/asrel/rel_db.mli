(** AS business-relationship database — the role CAIDA's AS-relationship
    dataset plays in the paper (special-case checks, Tier-1 clique,
    customer cones). Reads and writes CAIDA's serial-1 text format
    ([<a>|<b>|<rel>] with [-1] = a is provider of b, [0] = peers). *)

type t

type relationship =
  | A_provider_of_b
  | B_provider_of_a
  | Peers
  | Unknown

val create : unit -> t

val add_p2c : t -> provider:Rz_net.Asn.t -> customer:Rz_net.Asn.t -> unit
val add_p2p : t -> Rz_net.Asn.t -> Rz_net.Asn.t -> unit

val relationship : t -> Rz_net.Asn.t -> Rz_net.Asn.t -> relationship
val providers : t -> Rz_net.Asn.t -> Rz_net.Asn.t list
val customers : t -> Rz_net.Asn.t -> Rz_net.Asn.t list
val peers : t -> Rz_net.Asn.t -> Rz_net.Asn.t list
val neighbors : t -> Rz_net.Asn.t -> Rz_net.Asn.t list
val ases : t -> Rz_net.Asn.t list
(** All ASes appearing in any relationship. *)

val is_transit : t -> Rz_net.Asn.t -> bool
(** Has at least one customer. *)

val set_clique : t -> Rz_net.Asn.t list -> unit
(** Declare the Tier-1 clique (CAIDA's serial-1 files carry it in a
    [# input clique] header line, which {!of_string} parses). *)

val clique : t -> Rz_net.Asn.t list
val is_tier1 : t -> Rz_net.Asn.t -> bool

val infer_clique : t -> Rz_net.Asn.t list
(** Heuristic when no clique is declared: provider-free ASes with
    customers, restricted to a maximal mutually-peering subset (greedy by
    degree). *)

module Asn_set : Set.S with type elt = Rz_net.Asn.t

val customer_cone : t -> Rz_net.Asn.t -> Asn_set.t
(** The AS itself plus everything reachable downward over provider →
    customer edges. Memoized per database. *)

val in_customer_cone : t -> of_:Rz_net.Asn.t -> Rz_net.Asn.t -> bool

val warm_cones : t -> unit
(** Memoize every AS's customer cone up front, making subsequent cone
    queries read-only (for sharing across domains). *)

val to_string : t -> string
(** Serialize to serial-1 format, with a [# input clique] header. *)

val of_string : string -> (t, string) result
val load : string -> (t, string) result
(** Read a serial-1 file from disk. *)

val save : t -> string -> unit
