module Asn_set = Set.Make (Int)

type relationship =
  | A_provider_of_b
  | B_provider_of_a
  | Peers
  | Unknown

type t = {
  p2c : (Rz_net.Asn.t * Rz_net.Asn.t, unit) Hashtbl.t; (* (provider, customer) *)
  p2p : (Rz_net.Asn.t * Rz_net.Asn.t, unit) Hashtbl.t; (* normalized (min, max) *)
  providers_of : (Rz_net.Asn.t, Asn_set.t) Hashtbl.t;
  customers_of : (Rz_net.Asn.t, Asn_set.t) Hashtbl.t;
  peers_of : (Rz_net.Asn.t, Asn_set.t) Hashtbl.t;
  mutable clique : Rz_net.Asn.t list;
  cone_memo : (Rz_net.Asn.t, Asn_set.t) Hashtbl.t;
}

let create () =
  { p2c = Hashtbl.create 1024;
    p2p = Hashtbl.create 1024;
    providers_of = Hashtbl.create 1024;
    customers_of = Hashtbl.create 1024;
    peers_of = Hashtbl.create 1024;
    clique = [];
    cone_memo = Hashtbl.create 64 }

let add_to_index tbl key value =
  let existing = Option.value ~default:Asn_set.empty (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (Asn_set.add value existing)

let add_p2c t ~provider ~customer =
  if not (Hashtbl.mem t.p2c (provider, customer)) then begin
    Hashtbl.replace t.p2c (provider, customer) ();
    add_to_index t.customers_of provider customer;
    add_to_index t.providers_of customer provider;
    Hashtbl.reset t.cone_memo
  end

let add_p2p t a b =
  let key = if a <= b then (a, b) else (b, a) in
  if not (Hashtbl.mem t.p2p key) then begin
    Hashtbl.replace t.p2p key ();
    add_to_index t.peers_of a b;
    add_to_index t.peers_of b a
  end

let relationship t a b =
  if Hashtbl.mem t.p2c (a, b) then A_provider_of_b
  else if Hashtbl.mem t.p2c (b, a) then B_provider_of_a
  else if Hashtbl.mem t.p2p (if a <= b then (a, b) else (b, a)) then Peers
  else Unknown

let index_list tbl key =
  Asn_set.elements (Option.value ~default:Asn_set.empty (Hashtbl.find_opt tbl key))

let providers t asn = index_list t.providers_of asn
let customers t asn = index_list t.customers_of asn
let peers t asn = index_list t.peers_of asn

let neighbors t asn =
  Asn_set.elements
    (Asn_set.union
       (Option.value ~default:Asn_set.empty (Hashtbl.find_opt t.providers_of asn))
       (Asn_set.union
          (Option.value ~default:Asn_set.empty (Hashtbl.find_opt t.customers_of asn))
          (Option.value ~default:Asn_set.empty (Hashtbl.find_opt t.peers_of asn))))

let ases t =
  let acc = ref Asn_set.empty in
  Hashtbl.iter (fun (a, b) () -> acc := Asn_set.add a (Asn_set.add b !acc)) t.p2c;
  Hashtbl.iter (fun (a, b) () -> acc := Asn_set.add a (Asn_set.add b !acc)) t.p2p;
  Asn_set.elements !acc

let is_transit t asn = customers t asn <> []
let set_clique t clique = t.clique <- List.sort_uniq compare clique
let clique t = t.clique
let is_tier1 t asn = List.mem asn t.clique

let infer_clique t =
  let candidates =
    List.filter (fun asn -> providers t asn = [] && is_transit t asn) (ases t)
  in
  let by_degree =
    List.sort
      (fun a b -> compare (List.length (neighbors t b)) (List.length (neighbors t a)))
      candidates
  in
  (* Greedy: keep a candidate when it peers with every AS already kept. *)
  List.fold_left
    (fun kept asn ->
      if List.for_all (fun other -> relationship t asn other = Peers) kept then
        kept @ [ asn ]
      else kept)
    [] by_degree

let customer_cone t asn =
  match Hashtbl.find_opt t.cone_memo asn with
  | Some cone -> cone
  | None ->
    let rec bfs frontier cone =
      match frontier with
      | [] -> cone
      | x :: rest ->
        let fresh =
          List.filter (fun c -> not (Asn_set.mem c cone)) (customers t x)
        in
        bfs (fresh @ rest) (List.fold_left (fun s c -> Asn_set.add c s) cone fresh)
    in
    let cone = bfs [ asn ] (Asn_set.singleton asn) in
    Hashtbl.replace t.cone_memo asn cone;
    cone

let in_customer_cone t ~of_ asn = Asn_set.mem asn (customer_cone t of_)

let warm_cones t = List.iter (fun asn -> ignore (customer_cone t asn)) (ases t)

let to_string t =
  let buf = Buffer.create 4096 in
  if t.clique <> [] then begin
    Buffer.add_string buf "# input clique: ";
    Buffer.add_string buf (String.concat " " (List.map string_of_int t.clique));
    Buffer.add_char buf '\n'
  end;
  let p2c = Hashtbl.fold (fun k () acc -> k :: acc) t.p2c [] in
  let p2p = Hashtbl.fold (fun k () acc -> k :: acc) t.p2p [] in
  List.iter
    (fun (p, c) -> Buffer.add_string buf (Printf.sprintf "%d|%d|-1\n" p c))
    (List.sort compare p2c);
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "%d|%d|0\n" a b))
    (List.sort compare p2p);
  Buffer.contents buf

let of_string text =
  let t = create () in
  let error = ref None in
  List.iteri
    (fun lineno line ->
      let line = Rz_util.Strings.strip line in
      if !error <> None || line = "" then ()
      else if String.length line > 0 && line.[0] = '#' then begin
        match Rz_util.Strings.split_on_string ~sep:"clique" line with
        | [ _; rest ] ->
          let rest =
            String.map (fun c -> if c = ':' then ' ' else c) rest
          in
          let asns = List.filter_map int_of_string_opt (Rz_util.Strings.split_words rest) in
          if asns <> [] then set_clique t asns
        | _ -> ()
      end
      else
        match String.split_on_char '|' line with
        | [ a; b; rel ] | a :: b :: rel :: _ ->
          (match (int_of_string_opt a, int_of_string_opt b, Rz_util.Strings.strip rel) with
           | Some a, Some b, "-1" -> add_p2c t ~provider:a ~customer:b
           | Some a, Some b, "0" -> add_p2p t a b
           | _ ->
             error :=
               Some (Printf.sprintf "line %d: malformed relationship %S" (lineno + 1) line))
        | _ ->
          error := Some (Printf.sprintf "line %d: malformed line %S" (lineno + 1) line))
    (String.split_on_char '\n' text);
  match !error with Some e -> Error e | None -> Ok t

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

let save t path =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc
