lib/asrel/rel_db.mli: Rz_net Set
