lib/asrel/rel_db.ml: Buffer Hashtbl Int List Option Printf Rz_net Rz_util Set String
