(** Minimal JSON representation used to export the intermediate
    representation (IR), mirroring the paper's JSON export for integration
    with external tools. Self-contained (no third-party dependency in the
    sealed build environment). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Serialize. [indent] > 0 pretty-prints with that indent width; default is
    compact output. Strings are escaped per RFC 8259. *)

val of_string : string -> (t, string) result
(** Parse a JSON document. Numbers without ['.'], ['e'] are [Int]. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] otherwise. *)

val to_list : t -> t list
(** Contents of a [List]; raises [Invalid_argument] otherwise. *)

val equal : t -> t -> bool
