type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string ?(indent = 0) t =
  let buf = Buffer.create 256 in
  let pretty = indent > 0 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (depth * indent) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin Buffer.add_char buf ','; nl () end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin Buffer.add_char buf ','; nl () end;
          pad (depth + 1);
          escape buf k;
          Buffer.add_char buf ':';
          if pretty then Buffer.add_char buf ' ';
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

exception Parse_error of string

let of_string s =
  let pos = ref 0 in
  let n = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_lit lit value =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit then begin
      pos := !pos + String.length lit;
      value
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        if !pos >= n then fail "bad escape";
        let e = s.[!pos] in
        advance ();
        (match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 > n then fail "bad \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let code = int_of_string ("0x" ^ hex) in
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "bad escape");
        go ()
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    let text = String.sub s start (!pos - start) in
    if String.contains text '.' || String.contains text 'e' || String.contains text 'E'
    then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> parse_lit "true" (Bool true)
    | Some 'f' -> parse_lit "false" (Bool false)
    | Some 'n' -> parse_lit "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        items []
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        fields []
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
  | exception Failure msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function
  | List items -> items
  | _ -> invalid_arg "Json.to_list: not a list"

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Int x, Float y | Float y, Int x -> Float.equal (float_of_int x) y
  | String x, String y -> String.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
    List.length x = List.length y
    && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | _ -> false
