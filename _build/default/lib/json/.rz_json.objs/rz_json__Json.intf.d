lib/json/json.mli:
