(** The route verification engine (paper Section 5).

    For each inter-AS hop of a BGP route, checks the exporter's [export]
    rules and the importer's [import] rules against the route, classifying
    the hop with {!Status.t} in the paper's precedence order and emitting
    Appendix-C style diagnostics. *)

type config = {
  paper_compat : bool;
      (** [true] reproduces the paper exactly: community filters and
          future-work regex constructs (ASN ranges, [~] operators) make the
          rule {e skipped}. [false] (the default) evaluates them — except
          community filters, which remain skipped because BGP communities
          are stripped unpredictably en route and cannot be checked against
          collector dumps. *)
}

val default_config : config
(** [{paper_compat = false}]. *)

type t

val create : ?config:config -> Rz_irr.Db.t -> Rz_asrel.Rel_db.t -> t
(** [create db rels] — IRR database plus the business-relationship
    database used by the special-case checks. *)

val verify_hop :
  t ->
  direction:[ `Import | `Export ] ->
  subject:Rz_net.Asn.t ->
  remote:Rz_net.Asn.t ->
  prefix:Rz_net.Prefix.t ->
  path:Rz_net.Asn.t array ->
  Report.hop
(** Check one side of one hop. [subject] is the AS whose rules are
    examined; [remote] the other side of the BGP session; [path] is the
    AS-path as the route travels this hop — exporter first, origin last. *)

val verify_route : t -> Rz_bgp.Route.t -> Report.route_report option
(** Full walk from the origin: for each adjacent pair, the exporter's
    export check then the importer's import check. Returns [None] for
    routes the paper excludes: single-AS paths (nothing to verify) and
    paths containing BGP AS_SETs. Prepending is removed first. *)
