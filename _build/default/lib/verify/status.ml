type skip_reason =
  | Community_filter
  | Future_work_regex

type unrec_reason =
  | No_aut_num of Rz_net.Asn.t
  | No_rules
  | Zero_route_as of Rz_net.Asn.t
  | Unrecorded_as_set of string
  | Unrecorded_route_set of string
  | Unrecorded_peering_set of string
  | Unrecorded_filter_set of string

type special =
  | Export_self
  | Import_customer
  | Missing_routes
  | Only_provider_policies
  | Tier1_pair
  | Uphill

type t =
  | Verified
  | Skipped of skip_reason
  | Unrecorded of unrec_reason
  | Relaxed of special
  | Safelisted of special
  | Unverified

let rank = function
  | Verified -> 0
  | Skipped _ -> 1
  | Unrecorded _ -> 2
  | Relaxed _ -> 3
  | Safelisted _ -> 4
  | Unverified -> 5

let best a b = if rank b < rank a then b else a

let class_label = function
  | Verified -> "verified"
  | Skipped _ -> "skipped"
  | Unrecorded _ -> "unrecorded"
  | Relaxed _ -> "relaxed"
  | Safelisted _ -> "safelisted"
  | Unverified -> "unverified"

let skip_to_string = function
  | Community_filter -> "CommunityFilter"
  | Future_work_regex -> "FutureWorkRegex"

let unrec_to_string = function
  | No_aut_num asn -> Printf.sprintf "NoAutNum(%s)" (Rz_net.Asn.to_string asn)
  | No_rules -> "NoRules"
  | Zero_route_as asn -> Printf.sprintf "ZeroRouteAs(%s)" (Rz_net.Asn.to_string asn)
  | Unrecorded_as_set name -> Printf.sprintf "UnrecordedAsSet(%S)" name
  | Unrecorded_route_set name -> Printf.sprintf "UnrecordedRouteSet(%S)" name
  | Unrecorded_peering_set name -> Printf.sprintf "UnrecordedPeeringSet(%S)" name
  | Unrecorded_filter_set name -> Printf.sprintf "UnrecordedFilterSet(%S)" name

let special_to_string = function
  | Export_self -> "SpecExportSelf"
  | Import_customer -> "SpecImportCustomer"
  | Missing_routes -> "SpecMissingRoutes"
  | Only_provider_policies -> "SpecOnlyProviderPolicies"
  | Tier1_pair -> "SpecTier1Pair"
  | Uphill -> "SpecUphill"

let to_string = function
  | Verified -> "Verified"
  | Skipped r -> Printf.sprintf "Skipped(%s)" (skip_to_string r)
  | Unrecorded r -> Printf.sprintf "Unrecorded(%s)" (unrec_to_string r)
  | Relaxed s -> Printf.sprintf "Relaxed(%s)" (special_to_string s)
  | Safelisted s -> Printf.sprintf "Safelisted(%s)" (special_to_string s)
  | Unverified -> "Unverified"
