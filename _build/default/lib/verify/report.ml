type item =
  | Match_remote_as_num of Rz_net.Asn.t
  | Match_remote_as_set of string
  | Match_filter_as_num of Rz_net.Asn.t * Rz_net.Range_op.t
  | Match_filter_as_set of string
  | Match_filter
  | Unrec of Status.unrec_reason
  | Skip of Status.skip_reason
  | Spec of Status.special

type hop = {
  direction : [ `Import | `Export ];
  from_as : Rz_net.Asn.t;
  to_as : Rz_net.Asn.t;
  status : Status.t;
  items : item list;
  attrs : Rz_policy.Action_eval.attrs option;
}

type route_report = {
  route : Rz_bgp.Route.t;
  hops : hop list;
}

let item_to_string = function
  | Match_remote_as_num asn -> Printf.sprintf "MatchRemoteAsNum(%d)" asn
  | Match_remote_as_set name -> Printf.sprintf "MatchRemoteAsSet(%S)" name
  | Match_filter_as_num (asn, op) ->
    Printf.sprintf "MatchFilterAsNum(%d%s)" asn (Rz_net.Range_op.to_string op)
  | Match_filter_as_set name -> Printf.sprintf "MatchFilterAsSet(%S)" name
  | Match_filter -> "MatchFilter"
  | Unrec r -> Status.unrec_to_string r
  | Skip r -> Status.skip_to_string r
  | Spec s -> Status.special_to_string s

let verb_of hop =
  let dir = match hop.direction with `Import -> "Import" | `Export -> "Export" in
  match hop.status with
  | Status.Verified -> "Ok" ^ dir
  | Status.Skipped _ -> "Skip" ^ dir
  | Status.Unrecorded _ -> "Unrec" ^ dir
  | Status.Relaxed _ | Status.Safelisted _ -> "Meh" ^ dir
  | Status.Unverified -> "Bad" ^ dir

let hop_to_string hop =
  let items =
    match hop.items with
    | [] -> ""
    | items ->
      Printf.sprintf ", items: [%s]" (String.concat ", " (List.map item_to_string items))
  in
  let attrs =
    match hop.attrs with
    | None -> ""
    | Some a ->
      let parts =
        List.filter_map Fun.id
          [ Option.map (Printf.sprintf "LocalPref=%d") a.Rz_policy.Action_eval.local_pref;
            Option.map (Printf.sprintf "MED=%d") a.med;
            (match a.communities with
             | [] -> None
             | cs ->
               Some
                 (Printf.sprintf "communities={%s}"
                    (String.concat ","
                       (List.map Rz_policy.Action_eval.community_to_string cs)))) ]
      in
      (match parts with [] -> "" | parts -> ", attrs: " ^ String.concat " " parts)
  in
  Printf.sprintf "%s { from: %d, to: %d%s%s }" (verb_of hop) hop.from_as hop.to_as items attrs

let route_report_to_string r =
  String.concat "\n"
    (Printf.sprintf "route %s" (Rz_bgp.Route.to_line r.route)
     :: List.map hop_to_string r.hops)
