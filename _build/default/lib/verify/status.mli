(** Verification statuses for one import or export check, exactly the
    paper's Section 5 classification with its precedence order:
    Verified, Skip, Unrecorded, Relaxed, Safelisted, Unverified. *)

type skip_reason =
  | Community_filter       (** filter uses BGP communities — unobservable in dumps *)
  | Future_work_regex      (** ASN ranges / [~] operators under [paper_compat] *)

type unrec_reason =
  | No_aut_num of Rz_net.Asn.t
  | No_rules               (** aut-num exists but has zero rules in this direction *)
  | Zero_route_as of Rz_net.Asn.t
      (** the filter references an AS that never originates route objects *)
  | Unrecorded_as_set of string
  | Unrecorded_route_set of string
  | Unrecorded_peering_set of string
  | Unrecorded_filter_set of string

(** The six special cases of Section 5.1: three relaxed-filter misuses and
    three safelisted relationships. *)
type special =
  | Export_self
  | Import_customer
  | Missing_routes
  | Only_provider_policies
  | Tier1_pair
  | Uphill

type t =
  | Verified
  | Skipped of skip_reason
  | Unrecorded of unrec_reason
  | Relaxed of special
  | Safelisted of special
  | Unverified

val rank : t -> int
(** Precedence: Verified = 0 (best) … Unverified = 5. *)

val best : t -> t -> t
(** Lower rank wins; ties keep the first argument. *)

val class_label : t -> string
(** One of ["verified"], ["skipped"], ["unrecorded"], ["relaxed"],
    ["safelisted"], ["unverified"] — the coarse classes of Figures 2-4. *)

val to_string : t -> string
val special_to_string : special -> string
val unrec_to_string : unrec_reason -> string
val skip_to_string : skip_reason -> string
