lib/verify/aggregate.mli: Report Rz_net Status
