lib/verify/engine.ml: Array Hashtbl List Report Result Rz_aspath Rz_asrel Rz_bgp Rz_irr Rz_net Rz_policy Status
