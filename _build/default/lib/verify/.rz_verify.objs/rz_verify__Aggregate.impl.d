lib/verify/aggregate.ml: Hashtbl List Option Report Rz_net Status
