lib/verify/status.ml: Printf Rz_net
