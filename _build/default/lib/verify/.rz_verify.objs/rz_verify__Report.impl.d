lib/verify/report.ml: Fun List Option Printf Rz_bgp Rz_net Rz_policy Status String
