lib/verify/status.mli: Rz_net
