lib/verify/report.mli: Rz_bgp Rz_net Rz_policy Status
