lib/verify/engine.mli: Report Rz_asrel Rz_bgp Rz_irr Rz_net
