lib/rpsl/reader.mli: Obj
