lib/rpsl/obj.ml: Attr Format List Rz_util
