lib/rpsl/template.ml: Attr List Obj Printf Rz_util
