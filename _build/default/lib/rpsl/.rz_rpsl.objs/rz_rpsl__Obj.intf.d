lib/rpsl/obj.mli: Attr Format
