lib/rpsl/template.mli: Obj
