lib/rpsl/attr.mli: Format
