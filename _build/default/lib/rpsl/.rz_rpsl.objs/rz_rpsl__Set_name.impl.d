lib/rpsl/set_name.ml: List Result Rz_net Rz_util String
