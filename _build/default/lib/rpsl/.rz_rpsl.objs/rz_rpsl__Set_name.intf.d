lib/rpsl/set_name.mli:
