lib/rpsl/attr.ml: Format Rz_util
