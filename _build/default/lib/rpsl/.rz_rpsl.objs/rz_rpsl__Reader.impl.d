lib/rpsl/reader.ml: Attr Buffer List Obj Printf Rz_util String
