(** One RPSL attribute: a [key: value] pair after continuation-line folding
    and comment stripping. Keys are stored lowercase; values keep their
    original case (RPSL values like set names are case-insensitive, but we
    normalize lazily at use sites to preserve round-tripping). *)

type t = { key : string; value : string }

val make : string -> string -> t
(** [make key value] lowercases the key and strips the value. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
