type presence = Mandatory | Optional
type arity = Single | Multiple

type attr_spec = {
  key : string;
  presence : presence;
  arity : arity;
}

let spec key presence arity = { key; presence; arity }

(* Administrative attributes common to every class (RFC 2622 §3.1).
   [changed] is mandatory-multiple in the RFC; real IRRs increasingly drop
   it, so it is optional here to avoid flagging modern objects. *)
let generic =
  [ spec "descr" Optional Multiple;
    spec "admin-c" Optional Multiple;
    spec "tech-c" Optional Multiple;
    spec "remarks" Optional Multiple;
    spec "notify" Optional Multiple;
    spec "changed" Optional Multiple;
    spec "mnt-by" Mandatory Multiple;
    spec "source" Mandatory Single ]

let set_generic =
  generic
  @ [ spec "members" Optional Multiple;
      spec "mp-members" Optional Multiple;
      spec "mbrs-by-ref" Optional Multiple ]

let templates =
  [ ( "aut-num",
      [ spec "aut-num" Mandatory Single;
        spec "as-name" Mandatory Single;
        spec "member-of" Optional Multiple;
        spec "import" Optional Multiple;
        spec "export" Optional Multiple;
        spec "mp-import" Optional Multiple;
        spec "mp-export" Optional Multiple;
        spec "default" Optional Multiple;
        spec "mp-default" Optional Multiple ]
      @ generic );
    ("as-set", spec "as-set" Mandatory Single :: set_generic);
    ("route-set", spec "route-set" Mandatory Single :: set_generic);
    ( "peering-set",
      [ spec "peering-set" Mandatory Single;
        spec "peering" Optional Multiple;
        spec "mp-peering" Optional Multiple ]
      @ generic );
    ( "filter-set",
      [ spec "filter-set" Mandatory Single;
        spec "filter" Optional Single;
        spec "mp-filter" Optional Single ]
      @ generic );
    ( "route",
      [ spec "route" Mandatory Single;
        spec "origin" Mandatory Single;
        spec "member-of" Optional Multiple;
        spec "holes" Optional Multiple;
        spec "inject" Optional Multiple;
        spec "aggr-mtd" Optional Single;
        spec "aggr-bndry" Optional Single;
        spec "export-comps" Optional Single;
        spec "components" Optional Single ]
      @ generic );
    ( "route6",
      [ spec "route6" Mandatory Single;
        spec "origin" Mandatory Single;
        spec "member-of" Optional Multiple;
        spec "holes" Optional Multiple ]
      @ generic );
    ( "inet-rtr",
      [ spec "inet-rtr" Mandatory Single;
        spec "localas" Optional Single;
        spec "local-as" Mandatory Single;
        spec "ifaddr" Mandatory Multiple;
        spec "interface" Optional Multiple;
        spec "peer" Optional Multiple;
        spec "mp-peer" Optional Multiple;
        spec "member-of" Optional Multiple;
        spec "alias" Optional Multiple ]
      @ generic );
    ("rtr-set", spec "rtr-set" Mandatory Single :: set_generic);
    ( "mntner",
      [ spec "mntner" Mandatory Single;
        spec "auth" Mandatory Multiple;
        spec "upd-to" Optional Multiple;
        spec "mnt-nfy" Optional Multiple ]
      @ generic ) ]

let template cls = List.assoc_opt (Rz_util.Strings.lowercase cls) templates

type problem =
  | Missing_mandatory of string
  | Repeated_single of string
  | Unknown_attribute of string

let problem_to_string = function
  | Missing_mandatory key -> Printf.sprintf "mandatory attribute %S is missing" key
  | Repeated_single key -> Printf.sprintf "single-valued attribute %S appears more than once" key
  | Unknown_attribute key -> Printf.sprintf "attribute %S is not defined for this class" key

let check (obj : Obj.t) =
  match template obj.cls with
  | None -> None
  | Some specs ->
    let count key =
      List.length (List.filter (fun (a : Attr.t) -> a.key = key) obj.attrs)
    in
    let missing =
      List.filter_map
        (fun s ->
          if s.presence = Mandatory && count s.key = 0 then Some (Missing_mandatory s.key)
          else None)
        specs
    in
    let repeated =
      List.filter_map
        (fun s ->
          if s.arity = Single && count s.key > 1 then Some (Repeated_single s.key)
          else None)
        specs
    in
    let known key = List.exists (fun s -> s.key = key) specs in
    let unknown =
      obj.attrs
      |> List.map (fun (a : Attr.t) -> a.key)
      |> List.sort_uniq compare
      |> List.filter_map (fun key -> if known key then None else Some (Unknown_attribute key))
    in
    Some (missing @ repeated @ unknown)
