(** RPSL object templates (RFC 2622 §3 "whois -t"-style class schemas):
    which attributes each routing-related class requires, allows, and how
    many times. Used to validate objects beyond what the interpreting
    pipeline needs — the checks an IRR server runs on submission. *)

type presence = Mandatory | Optional
type arity = Single | Multiple

type attr_spec = {
  key : string;
  presence : presence;
  arity : arity;
}

val template : string -> attr_spec list option
(** The schema for a class ([aut-num], [as-set], [route-set],
    [peering-set], [filter-set], [route], [route6], [mntner]); [None] for
    classes this implementation does not model. Every template includes
    the generic administrative attributes ([descr], [admin-c], [tech-c],
    [mnt-by], [changed], [source], [remarks], [notify]). *)

type problem =
  | Missing_mandatory of string   (** a mandatory attribute is absent *)
  | Repeated_single of string     (** a single-valued attribute appears twice *)
  | Unknown_attribute of string   (** an attribute the class does not define *)

val problem_to_string : problem -> string

val check : Obj.t -> problem list option
(** Validate an object against its class template; [None] when the class
    has no template. Problems are ordered: missing, repeated, unknown. *)
