type kind = As_set | Route_set | Peering_set | Filter_set

let prefix_of = function
  | As_set -> "AS-"
  | Route_set -> "RS-"
  | Peering_set -> "PRNG-"
  | Filter_set -> "FLTR-"

let components name = String.split_on_char ':' name

let is_word_chars s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
         || c = '-' || c = '_')
       s

let is_asn s = Result.is_ok (Rz_net.Asn.of_string s) && Rz_util.Strings.starts_with_ci ~prefix:"AS" s

let is_set_component kind s =
  let prefix = prefix_of kind in
  Rz_util.Strings.starts_with_ci ~prefix s
  && String.length s > String.length prefix
  && is_word_chars s

(* RFC 2622 additionally reserves bare "AS-ANY" and "RS-ANY": they are
   keywords, not set names. *)
let reserved = [ "AS-ANY"; "RS-ANY"; "ANY"; "PEERAS" ]

let is_valid kind name =
  let comps = components name in
  comps <> []
  && (not (List.mem (Rz_util.Strings.uppercase name) reserved))
  && List.for_all (fun c -> is_asn c || is_set_component kind c) comps
  && List.exists (fun c -> is_set_component kind c) comps

let classify name =
  let comps = components name in
  let kind_of c =
    if is_set_component As_set c then Some As_set
    else if is_set_component Route_set c then Some Route_set
    else if is_set_component Peering_set c then Some Peering_set
    else if is_set_component Filter_set c then Some Filter_set
    else None
  in
  (* The kind is given by the last set-prefixed component (hierarchical
     names end with the most specific set). *)
  List.fold_left
    (fun acc c -> match kind_of c with Some k -> Some k | None -> acc)
    None comps

let canonical = Rz_util.Strings.uppercase
