type t = { key : string; value : string }

let make key value =
  { key = Rz_util.Strings.lowercase (Rz_util.Strings.strip key);
    value = Rz_util.Strings.strip value }

let pp fmt { key; value } = Format.fprintf fmt "%s: %s" key value
let equal a b = a = b
