(** A parsed RPSL object: its class (the key of the first attribute), its
    name (that attribute's value), and the remaining attributes in order. *)

type t = {
  cls : string;      (** object class, lowercase, e.g. ["aut-num"] *)
  name : string;     (** primary key, e.g. ["AS8283"] or ["AS-FOO"] *)
  attrs : Attr.t list;  (** all attributes including the class attribute *)
  line : int;        (** 1-based line of the first attribute in the dump *)
}

val values : t -> string -> string list
(** All values of a (multi-valued) attribute, in order of appearance. *)

val value : t -> string -> string option
(** First value of the attribute, if present. *)

val is_routing_class : string -> bool
(** The classes RPSLyzer interprets: aut-num, as-set, route-set,
    peering-set, filter-set, route, route6. *)

val pp : Format.formatter -> t -> unit
(** Re-render as RPSL text. *)
