(** Reader for IRR dump files: splits the dump into paragraph-separated
    objects, folds continuation lines (leading whitespace or ['+']), strips
    ['#'] end-of-line comments and ['%'] server remark lines, and records
    malformed lines as errors without aborting the surrounding object. *)

type error = { line : int; text : string; reason : string }

type result_t = {
  objects : Obj.t list;
  errors : error list;
}

val parse_string : string -> result_t
(** Parse a whole dump held in memory. *)

val parse_file : string -> result_t
(** Parse a dump file from disk. Raises [Sys_error] on IO failure. *)

val fold_file : string -> init:'a -> f:('a -> Obj.t -> 'a) -> 'a * error list
(** Stream objects from a file without materializing the whole list;
    used for large dumps. *)
