type t = {
  cls : string;
  name : string;
  attrs : Attr.t list;
  line : int;
}

let values t key =
  let key = Rz_util.Strings.lowercase key in
  List.filter_map
    (fun (a : Attr.t) -> if a.key = key then Some a.value else None)
    t.attrs

let value t key = match values t key with [] -> None | v :: _ -> Some v

let routing_classes =
  [ "aut-num"; "as-set"; "route-set"; "peering-set"; "filter-set"; "route"; "route6" ]

let is_routing_class cls = List.mem (Rz_util.Strings.lowercase cls) routing_classes

let pp fmt t =
  List.iter (fun (a : Attr.t) -> Format.fprintf fmt "%s:%s%s@." a.key
                (if a.value = "" then "" else " ") a.value)
    t.attrs
