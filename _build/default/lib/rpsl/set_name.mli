(** RPSL set names (RFC 2622 §5): [as-set] names start with [AS-],
    [route-set] names with [RS-], [peering-set] names with [PRNG-], and
    [filter-set] names with [FLTR-]. Hierarchical names are colon-separated
    sequences of set names and ASNs in which at least one component is a
    set name of the expected kind (e.g. [AS8267:AS-KRAKOW]).

    The paper reports 12 invalid as-set names and 17 invalid route-set
    names in the wild; this module is what detects them. *)

type kind = As_set | Route_set | Peering_set | Filter_set

val prefix_of : kind -> string
(** The mandatory name prefix, e.g. ["AS-"] for {!As_set}. *)

val is_valid : kind -> string -> bool
(** Validity of a (possibly hierarchical) set name of the given kind. *)

val classify : string -> kind option
(** Guess the set kind from the name's components; [None] when no
    component carries a set prefix (e.g. a plain ASN). *)

val canonical : string -> string
(** Uppercased name used as a lookup key (set names are
    case-insensitive). *)

val components : string -> string list
(** Colon-split components. *)
