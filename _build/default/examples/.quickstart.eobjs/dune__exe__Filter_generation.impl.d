examples/filter_generation.ml: List Printf Rpslyzer Rz_ir Rz_irr Rz_net Rz_policy Rz_stats
