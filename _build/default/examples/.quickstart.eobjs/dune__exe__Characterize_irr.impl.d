examples/characterize_irr.ml: List Printf Rpslyzer Rz_stats Rz_topology Rz_util String
