examples/quickstart.mli:
