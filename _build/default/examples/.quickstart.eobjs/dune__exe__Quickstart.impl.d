examples/quickstart.ml: List Printf Rpslyzer Rz_asrel Rz_ir Rz_irr Rz_net Rz_policy Rz_verify String
