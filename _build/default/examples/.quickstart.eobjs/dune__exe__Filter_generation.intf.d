examples/filter_generation.mli:
