examples/whois_query.mli:
