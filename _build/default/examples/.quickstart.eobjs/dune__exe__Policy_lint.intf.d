examples/policy_lint.mli:
