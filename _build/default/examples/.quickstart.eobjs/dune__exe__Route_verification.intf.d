examples/route_verification.mli:
