examples/route_verification.ml: List Printf Rz_asrel Rz_bgp Rz_irr Rz_net Rz_verify
