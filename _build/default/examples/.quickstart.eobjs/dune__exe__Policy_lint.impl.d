examples/policy_lint.ml: List Printf Rpslyzer Rz_asrel Rz_lint
