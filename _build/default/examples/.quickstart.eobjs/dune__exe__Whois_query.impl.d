examples/whois_query.ml: Array List Printf Rpslyzer Rz_ir Rz_irr Rz_net Rz_policy Rz_synthirr Rz_topology Rz_util String Sys
