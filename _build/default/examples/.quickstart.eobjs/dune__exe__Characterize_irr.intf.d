examples/characterize_irr.mli:
