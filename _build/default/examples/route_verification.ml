(* Appendix-C walkthrough: rebuild the paper's route verification example
   — prefix 103.162.114.0/23 with AS-path 3257 1299 6939 133840 56239
   141893 — from its published RPSL fragments and relationship facts, and
   print the per-hop report. The statuses match the appendix:

     BadExport   141893 -> 56239   (peering mismatches; origin's export
                                     is never uphill-safelisted)
     MehImport   141893 -> 56239   (only-provider policies)
     MehExport   56239 -> 133840   (filter miss; the appendix reports
                                     SpecUphill because its CAIDA cone
                                     snapshot excluded AS141893 from
                                     AS56239's cone despite classifying it
                                     as a customer — with self-consistent
                                     relationship data the same tier is
                                     reached one check earlier, as
                                     SpecExportSelf)
     MehImport   56239 -> 133840   (only-provider policies)
     MehExport   133840 -> 6939    (uphill)
     OkImport    133840 -> 6939    (from AS-ANY accept ANY)
     OkExport    6939 -> 1299      (cone as-set matches)
     OkImport    6939 -> 1299
     UnrecExport 1299 -> 3257      (unrecorded as-sets)
     MehImport   1299 -> 3257      (Tier-1 pair)

   Run with: dune exec examples/route_verification.exe *)

let rpsl =
  (* aut-num fragments quoted in the appendix *)
  "aut-num: AS141893\n\
   export: to AS58552 announce AS141893\n\
   export: to AS131755 announce AS141893\n\
   import: from AS58552 accept ANY\n\
   \n\
   aut-num: AS56239\n\
   export: to AS133840 announce AS56239\n\
   import: from AS55685 accept ANY\n\
   import: from AS133840 accept ANY\n\
   \n\
   aut-num: AS133840\n\
   import: from AS55685 accept ANY\n\
   export: to AS55685 announce AS133840\n\
   \n\
   aut-num: AS6939\n\
   import: from AS-ANY accept ANY\n\
   export: to AS-ANY announce AS-HURRICANE\n\
   \n\
   aut-num: AS1299\n\
   import: from AS6939 accept ANY\n\
   export: to AS3257 announce AS1299:AS-TWELVE99-CUSTOMER-V4 AND AS1299:AS-TWELVE99-PEER-V4\n\
   \n\
   aut-num: AS3257\n\
   import: from AS12 accept AS12\n\
   \n\
   as-set: AS-HURRICANE\n\
   members: AS6939, AS133840, AS56239, AS141893\n\
   \n\
   route: 103.162.114.0/23\n\
   origin: AS141893\n\
   \n\
   route: 27.100.0.0/24\n\
   origin: AS56239\n\
   \n\
   route: 184.104.0.0/15\n\
   origin: AS6939\n"

let relationships () =
  let rels = Rz_asrel.Rel_db.create () in
  (* CAIDA-style facts used by the appendix: 141893 is a customer of
     56239; 56239 a customer of 133840; 133840 a customer of 6939; 6939
     peers with 1299; 1299 and 3257 are Tier-1s. 137296 is 56239's only
     cone member. *)
  Rz_asrel.Rel_db.add_p2c rels ~provider:56239 ~customer:141893;
  Rz_asrel.Rel_db.add_p2c rels ~provider:56239 ~customer:137296;
  Rz_asrel.Rel_db.add_p2c rels ~provider:133840 ~customer:56239;
  Rz_asrel.Rel_db.add_p2c rels ~provider:6939 ~customer:133840;
  Rz_asrel.Rel_db.add_p2p rels 6939 1299;
  Rz_asrel.Rel_db.add_p2p rels 1299 3257;
  Rz_asrel.Rel_db.add_p2c rels ~provider:55685 ~customer:56239;
  Rz_asrel.Rel_db.add_p2c rels ~provider:55685 ~customer:133840;
  Rz_asrel.Rel_db.set_clique rels [ 1299; 3257 ];
  rels

let () =
  let db = Rz_irr.Db.of_dumps [ ("MIXED", rpsl) ] in
  let engine = Rz_verify.Engine.create db (relationships ()) in
  let route =
    Rz_bgp.Route.make
      (Rz_net.Prefix.of_string_exn "103.162.114.0/23")
      [ 3257; 1299; 6939; 133840; 56239; 141893 ]
  in
  print_endline "Verifying 103.162.114.0/23 via 3257 1299 6939 133840 56239 141893:";
  print_newline ();
  match Rz_verify.Engine.verify_route engine route with
  | None -> print_endline "route excluded"
  | Some report ->
    List.iter
      (fun hop -> print_endline (Rz_verify.Report.hop_to_string hop))
      report.hops;
    print_newline ();
    (* Narrate the two interesting hops like the appendix does. *)
    let bad_export =
      List.find
        (fun (h : Rz_verify.Report.hop) -> h.direction = `Export && h.from_as = 141893)
        report.hops
    in
    Printf.printf
      "The export from AS141893 to AS56239 is %s: AS141893 only declares exports to \
       AS58552 and AS131755.\n"
      (Rz_verify.Status.to_string bad_export.status);
    let meh_import =
      List.find
        (fun (h : Rz_verify.Report.hop) -> h.direction = `Import && h.to_as = 56239)
        report.hops
    in
    Printf.printf
      "The import by AS56239 from AS141893 is %s: AS56239 only writes rules for its \
       providers, and AS141893 is its customer.\n"
      (Rz_verify.Status.to_string meh_import.status)
