(* An in-memory whois-style query loop over a generated IRR — the query
   interface operators use against real IRRs (Appendix A shows whois
   transcripts). Reads object names from argv (or a default set) and
   prints the resolved objects.

   Run with: dune exec examples/whois_query.exe -- AS1000 AS1007:AS-CUST *)

let print_aut_num db (an : Rz_ir.Ir.aut_num) =
  Printf.printf "aut-num:     %s\n" (Rz_net.Asn.to_string an.asn);
  Printf.printf "as-name:     %s\n" an.as_name;
  List.iter
    (fun rule ->
      let text = Rz_policy.Ast.rule_to_string rule in
      match String.index_opt text ':' with
      | Some i ->
        Printf.printf "%-12s %s\n"
          (String.sub text 0 (i + 1))
          (String.sub text (i + 2) (String.length text - i - 2))
      | None -> print_endline text)
    (an.imports @ an.exports);
  Printf.printf "source:      %s\n" an.source;
  ignore db

let print_as_set db (s : Rz_ir.Ir.as_set) =
  Printf.printf "as-set:      %s\n" s.name;
  Printf.printf "members:     %s\n"
    (String.concat ", " (List.map Rz_net.Asn.to_string s.member_asns @ s.member_sets));
  let flat = Rz_irr.Db.flatten_as_set db s.name in
  Printf.printf "remarks:     flattens to %d ASNs, depth %d%s\n"
    (Rz_irr.Db.Asn_set.cardinal flat)
    (Rz_irr.Db.as_set_depth db s.name)
    (if Rz_irr.Db.as_set_has_loop db s.name then " (contains a loop!)" else "");
  Printf.printf "source:      %s\n" s.source

let query db name =
  Printf.printf "%% query %s\n" name;
  let ir = Rz_irr.Db.ir db in
  let hits = ref 0 in
  (match Rz_net.Asn.of_string name with
   | Ok asn when Rz_util.Strings.starts_with_ci ~prefix:"AS" name ->
     (match Rz_ir.Ir.find_aut_num ir asn with
      | Some an -> incr hits; print_aut_num db an
      | None -> ());
     (* also list the routes the AS originates *)
     let prefixes = Rz_irr.Db.origin_prefixes db asn in
     if prefixes <> [] then begin
       incr hits;
       List.iter
         (fun pfx ->
           Printf.printf "route:       %s\norigin:      %s\n"
             (Rz_net.Prefix.to_string pfx) (Rz_net.Asn.to_string asn))
         prefixes
     end
   | _ -> ());
  (match Rz_ir.Ir.find_as_set ir name with
   | Some s -> incr hits; print_as_set db s
   | None -> ());
  (match Rz_net.Prefix.of_string name with
   | Ok pfx ->
     List.iter
       (fun origin ->
         incr hits;
         Printf.printf "route:       %s\norigin:      %s\n"
           (Rz_net.Prefix.to_string pfx) (Rz_net.Asn.to_string origin))
       (Rz_irr.Db.exact_origins db pfx)
   | Error _ -> ());
  if !hits = 0 then Printf.printf "%%  no entries found\n";
  print_newline ()

let () =
  let world =
    Rpslyzer.Pipeline.build_synthetic
      ~topo_params:{ Rz_topology.Gen.default_params with n_mid = 40; n_stub = 150 }
      ()
  in
  let names =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ ->
      (* default queries: the first Tier-1, its cone set, one of its
         prefixes *)
      let tier1 = world.topo.ases.(0) in
      [ Rz_net.Asn.to_string tier1;
        Rz_synthirr.Generate.cone_set_name tier1;
        (match Rz_topology.Gen.prefixes_of world.topo tier1 with
         | p :: _ -> Rz_net.Prefix.to_string p
         | [] -> "AS-COOPERATIVE") ]
  in
  List.iter (query world.db) names
