(* Characterize RPSL usage over a generated synthetic Internet — the
   Section-4 analysis end-to-end: topology -> RPSL text -> parse ->
   statistics.

   Run with: dune exec examples/characterize_irr.exe *)

let () =
  let topo_params =
    { Rz_topology.Gen.default_params with n_tier1 = 5; n_mid = 60; n_stub = 250 }
  in
  let world = Rpslyzer.Pipeline.build_synthetic ~topo_params () in
  let u = Rpslyzer.Pipeline.usage world in

  print_endline "== IRR inventory (Table 1 shape) ==";
  Rz_util.Table.print
    ~header:[ "IRR"; "bytes"; "aut-num"; "route"; "import"; "export" ]
    (List.map
       (fun (r : Rz_stats.Usage.table1_row) ->
         [ r.irr; string_of_int r.size_bytes; string_of_int r.n_aut_num;
           string_of_int r.n_route; string_of_int r.n_import; string_of_int r.n_export ])
       u.table1);

  print_endline "\n== Figure 1: CCDF of rules per aut-num ==";
  let samples = List.map snd u.rules_per_aut_num in
  let bgpq4_samples = List.map snd u.bgpq4_rules_per_aut_num in
  Rz_util.Table.print
    ~header:[ "rules >="; "all rules"; "bgpq4-compatible" ]
    (List.map2
       (fun (x, f_all) (_, f_b) ->
         [ string_of_int x; Rz_util.Table.pct f_all; Rz_util.Table.pct f_b ])
       (Rz_util.Stats_util.ccdf_at samples [ 1; 2; 5; 10; 20; 50 ])
       (Rz_util.Stats_util.ccdf_at bgpq4_samples [ 1; 2; 5; 10; 20; 50 ]));

  print_endline "\n== Table 2 shape: defined vs referenced ==";
  let t2 = u.table2 in
  Rz_util.Table.print
    ~header:[ ""; "aut-num"; "as-set"; "route-set"; "peering-set"; "filter-set" ]
    [ [ "defined"; string_of_int t2.defined_aut_num; string_of_int t2.defined_as_set;
        string_of_int t2.defined_route_set; string_of_int t2.defined_peering_set;
        string_of_int t2.defined_filter_set ];
      [ "referenced"; string_of_int t2.ref_overall_aut_num;
        string_of_int t2.ref_overall_as_set; string_of_int t2.ref_overall_route_set;
        string_of_int t2.ref_overall_peering_set; string_of_int t2.ref_overall_filter_set ] ];

  Printf.printf "\nfilter shapes: %s\n"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) u.filter_kind_histogram));
  Printf.printf "simple peerings: %s; ASes fully BGPq4-compatible: %s\n"
    (Rz_util.Table.pct u.peering_simple_fraction)
    (Rz_util.Table.pct u.ases_bgpq4_only);
  Printf.printf "as-sets: %d (empty %d, singleton %d, loops %d, depth>=5 %d)\n"
    u.as_set_stats.n_sets u.as_set_stats.empty u.as_set_stats.singleton
    u.as_set_stats.with_loop u.as_set_stats.depth_5_plus;
  Printf.printf "errors: %d syntax, %d invalid as-set names\n"
    u.error_stats.syntax_errors u.error_stats.invalid_as_set_names
