(* Lint a set of RPSL objects — the "RPSL linter" the paper proposes as
   future work, built from its own findings. The input below contains one
   instance of each problem class Sections 4-5 quantify.

   Run with: dune exec examples/policy_lint.exe *)

let rpsl =
  "aut-num: AS64500\n\
   as-name: TRANSIT-WITH-ISSUES\n\
   import: from AS64501 accept AS64501\n\
   export: to AS64510 announce AS64500\n\
   import: from AS64512 accept ANY\n\
   \n\
   aut-num: AS64502\n\
   as-name: SILENT\n\
   \n\
   as-set: AS-EMPTY-EXAMPLE\n\
   \n\
   as-set: AS64500:AS-SINGLETON\n\
   members: AS64500\n\
   \n\
   as-set: AS-LOOPY\n\
   members: AS-LOOPY2\n\
   \n\
   as-set: AS-LOOPY2\n\
   members: AS-LOOPY, AS64503\n\
   \n\
   as-set: AS-WITH-ANY\n\
   members: ANY, AS64504\n\
   \n\
   route: 203.0.113.0/24\n\
   origin: AS64500\n"

let () =
  let db = Rpslyzer.db_of_rpsl rpsl in
  (* Ground-truth relationships let the misuse checks fire: AS64500 is a
     transit provider of AS64501 (itself transit) and a customer of
     AS64510. *)
  let rels = Rz_asrel.Rel_db.create () in
  Rz_asrel.Rel_db.add_p2c rels ~provider:64500 ~customer:64501;
  Rz_asrel.Rel_db.add_p2c rels ~provider:64501 ~customer:64505;
  Rz_asrel.Rel_db.add_p2c rels ~provider:64510 ~customer:64500;
  Rz_asrel.Rel_db.add_p2p rels 64500 64520;

  let diags = Rz_lint.Linter.lint ~rels db in
  Printf.printf "%d diagnostics:\n\n" (List.length diags);
  List.iter
    (fun d -> print_endline (Rz_lint.Linter.diagnostic_to_string d))
    diags;

  (* Scoped lint for a single object (what an IRR server could run on
     submission). *)
  print_endline "\n-- submitting AS-WITH-ANY would be rejected: --";
  List.iter
    (fun d -> print_endline ("  " ^ Rz_lint.Linter.diagnostic_to_string d))
    (Rz_lint.Linter.lint_object db ~cls:"as-set" ~name:"AS-WITH-ANY")
