(* Quickstart: parse a snippet of RPSL, inspect the interpreted rules,
   and export the IR as JSON.

   Run with: dune exec examples/quickstart.exe *)

let rpsl =
  "aut-num: AS38639\n\
   as-name: HANABI\n\
   export: to AS4713 announce AS-HANABI\n\
   import: from AS4713 accept ANY\n\
   mp-import: afi any.unicast from AS13911 accept ANY AND NOT {0.0.0.0/0, ::/0}\n\
   \n\
   as-set: AS-HANABI\n\
   members: AS38639, AS64500\n\
   \n\
   route: 203.0.113.0/24\n\
   origin: AS38639\n"

let () =
  (* 1. Parse the text into the intermediate representation. *)
  let ir = Rpslyzer.parse_rpsl rpsl in
  print_endline "== Parsed objects ==";
  (match Rz_ir.Ir.find_aut_num ir 38639 with
   | Some an ->
     Printf.printf "aut-num %s (%s): %d imports, %d exports\n"
       (Rz_net.Asn.to_string an.asn) an.as_name (List.length an.imports)
       (List.length an.exports);
     List.iter
       (fun rule -> Printf.printf "  %s\n" (Rz_policy.Ast.rule_to_string rule))
       (an.imports @ an.exports)
   | None -> failwith "aut-num missing");

  (* 2. Build the queryable database and resolve the as-set. *)
  let db = Rpslyzer.db_of_rpsl rpsl in
  let members = Rz_irr.Db.flatten_as_set db "AS-HANABI" in
  Printf.printf "\nAS-HANABI flattens to: %s\n"
    (String.concat ", "
       (List.map Rz_net.Asn.to_string (Rz_irr.Db.Asn_set.elements members)));

  (* 3. Check a route against AS38639's export policy the way the
        verifier does. *)
  let rels = Rz_asrel.Rel_db.create () in
  let engine = Rz_verify.Engine.create db rels in
  let hop =
    Rz_verify.Engine.verify_hop engine ~direction:`Export ~subject:38639 ~remote:4713
      ~prefix:(Rz_net.Prefix.of_string_exn "203.0.113.0/24")
      ~path:[| 38639 |]
  in
  Printf.printf "\nexport check: %s\n" (Rz_verify.Report.hop_to_string hop);

  (* 4. Export the whole IR as JSON for external tools. *)
  print_endline "\n== IR as JSON (truncated) ==";
  let json = Rpslyzer.ir_to_json ~indent:2 ir in
  print_endline (String.sub json 0 (min 400 (String.length json)));
  print_endline "..."
