(* BGPq4-style router filter generation: resolve an as-set to its member
   ASNs, collect their route objects, and print a prefix-list — the
   operational workflow the paper describes transit providers using
   (Section 1). Unlike BGPq4 we can also expand route-sets with range
   operators and report BGPq4-incompatible rules.

   Run with: dune exec examples/filter_generation.exe *)

let () =
  (* A small provider world: AS65000 with two customers, one of which is
     itself a small transit network publishing its own cone set. *)
  let rpsl =
    "aut-num: AS65000\n\
     as-name: PROVIDER\n\
     export: to AS64496 announce AS65000:AS-CUSTOMERS\n\
     \n\
     as-set: AS65000:AS-CUSTOMERS\n\
     members: AS65000, AS65001, AS65002:AS-CONE\n\
     \n\
     as-set: AS65002:AS-CONE\n\
     members: AS65002, AS65003\n\
     \n\
     route-set: AS65000:RS-STATIC\n\
     members: 198.51.100.0/24^24-25, 203.0.113.0/24\n\
     \n\
     route: 192.0.2.0/24\norigin: AS65001\n\
     route: 198.18.0.0/15\norigin: AS65002\n\
     route: 198.19.128.0/17\norigin: AS65003\n\
     route: 203.0.113.0/24\norigin: AS65000\n"
  in
  let db = Rpslyzer.db_of_rpsl rpsl in

  (* --- prefix-list from an as-set (what `bgpq4 AS65000:AS-CUSTOMERS`
         would produce) --- *)
  let set_name = "AS65000:AS-CUSTOMERS" in
  let members = Rz_irr.Db.flatten_as_set db set_name in
  Printf.printf "! generated from %s (%d member ASNs)\n" set_name
    (Rz_irr.Db.Asn_set.cardinal members);
  let prefixes =
    Rz_irr.Db.Asn_set.fold
      (fun asn acc -> List.rev_append (Rz_irr.Db.origin_prefixes db asn) acc)
      members []
    (* aggregate adjacent prefixes like bgpq4 -A *)
    |> Rz_net.Prefix_agg.aggregate
  in
  List.iteri
    (fun i prefix ->
      Printf.printf "ip prefix-list %s seq %d permit %s\n" "AS65000-CUSTOMERS"
        ((i + 1) * 5)
        (Rz_net.Prefix.to_string prefix))
    prefixes;

  (* --- prefix-list from a route-set, honouring range operators --- *)
  print_newline ();
  let rs = "AS65000:RS-STATIC" in
  Printf.printf "! generated from %s\n" rs;
  List.iter
    (fun (prefix, op) ->
      let le_ge =
        match op with
        | Rz_net.Range_op.None_ -> ""
        | Rz_net.Range_op.Plus -> Printf.sprintf " le %d" (Rz_net.Prefix.max_len prefix)
        | Rz_net.Range_op.Minus ->
          Printf.sprintf " ge %d" (prefix.Rz_net.Prefix.len + 1)
        | Rz_net.Range_op.Exact n -> Printf.sprintf " ge %d le %d" n n
        | Rz_net.Range_op.Range (lo, hi) -> Printf.sprintf " ge %d le %d" lo hi
      in
      Printf.printf "ip prefix-list RS-STATIC permit %s%s\n"
        (Rz_net.Prefix.to_string prefix) le_ge)
    (Rz_irr.Db.flatten_route_set db rs);

  (* --- BGPq4 compatibility report for an aut-num --- *)
  print_newline ();
  match Rz_ir.Ir.find_aut_num (Rz_irr.Db.ir db) 65000 with
  | None -> ()
  | Some an ->
    List.iter
      (fun rule ->
        Printf.printf "%s : %s\n"
          (if Rz_stats.Bgpq4_compat.rule_compatible rule then "bgpq4-ok  " else "bgpq4-SKIP")
          (Rz_policy.Ast.rule_to_string rule))
      (an.imports @ an.exports)
