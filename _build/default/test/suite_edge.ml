(* Edge-case sweep across modules: inputs the main suites don't cover. *)
module Db = Rz_irr.Db

let p = Rz_net.Prefix.of_string_exn
let db_of text = Db.of_dumps [ ("TEST", text) ]

(* ---------------- net edges ---------------- *)

let test_default_routes_in_trie () =
  let trie = Rz_net.Prefix_trie.create () in
  Rz_net.Prefix_trie.add trie (p "0.0.0.0/0") 1;
  Rz_net.Prefix_trie.add trie (p "::/0") 2;
  Alcotest.(check (list int)) "v4 default covers everything" [ 1 ]
    (List.map snd (Rz_net.Prefix_trie.covering trie (p "203.0.113.0/24")));
  Alcotest.(check (list int)) "v6 default covers v6" [ 2 ]
    (List.map snd (Rz_net.Prefix_trie.covering trie (p "2001:db8::/32")))

let test_prefix_host_routes () =
  Alcotest.(check bool) "/32 contains itself" true
    (Rz_net.Prefix.contains (p "192.0.2.1/32") (p "192.0.2.1/32"));
  Alcotest.(check bool) "/128 parse/print" true
    (Rz_net.Prefix.to_string (p "2001:db8::1/128") = "2001:db8::1/128")

let test_asn_asdot_roundtrip () =
  let big = Rz_net.Asn.of_string_exn "4.2" in
  Alcotest.(check string) "asdot render" "4.2" (Rz_net.Asn.to_asdot big);
  Alcotest.(check int) "asdot value" ((4 lsl 16) lor 2) big

let test_range_op_full_lengths () =
  (* /0 with ^+ admits the entire family *)
  Alcotest.(check bool) "0/0^+ admits /32" true
    (Rz_net.Range_op.matches Rz_net.Range_op.Plus ~declared:(p "0.0.0.0/0")
       ~observed:(p "192.0.2.1/32"));
  Alcotest.(check bool) "0/0^0-24 rejects /25" false
    (Rz_net.Range_op.matches (Rz_net.Range_op.Range (0, 24)) ~declared:(p "0.0.0.0/0")
       ~observed:(p "192.0.2.0/25"))

(* ---------------- policy edges ---------------- *)

let test_case_insensitive_keywords () =
  match
    Rz_policy.Parser.parse_rule ~direction:`Import ~multiprotocol:false
      "FROM AS1 ACTION PREF=10; ACCEPT ANY"
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_whitespace_noise () =
  match
    Rz_policy.Parser.parse_rule ~direction:`Import ~multiprotocol:false
      "   from\n  AS1   accept\n\n ANY  "
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_filter_deep_nesting () =
  match
    Rz_policy.Parser.parse_filter "((((AS1 OR AS2) AND NOT AS3) OR {10.0.0.0/8^+}))"
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_empty_braced_term_rejected () =
  Alcotest.(check bool) "empty braces" true
    (Result.is_error
       (Rz_policy.Parser.parse_rule ~direction:`Import ~multiprotocol:false "{ }"))

(* ---------------- verify edges ---------------- *)

let test_verify_default_route_filter () =
  (* the AS14595 pattern: reject defaults *)
  let rels = Rz_asrel.Rel_db.create () in
  let engine =
    Rz_verify.Engine.create
      (db_of "aut-num: AS10\nmp-import: afi any.unicast from AS1 accept ANY AND NOT {0.0.0.0/0, ::/0}\n")
      rels
  in
  let ok =
    Rz_verify.Engine.verify_hop engine ~direction:`Import ~subject:10 ~remote:1
      ~prefix:(p "192.0.2.0/24") ~path:[| 1 |]
  in
  Alcotest.(check string) "regular prefix verifies" "verified"
    (Rz_verify.Status.class_label ok.status);
  let default_v4 =
    Rz_verify.Engine.verify_hop engine ~direction:`Import ~subject:10 ~remote:1
      ~prefix:(p "0.0.0.0/0") ~path:[| 1 |]
  in
  Alcotest.(check bool) "default rejected" true
    (default_v4.status <> Rz_verify.Status.Verified);
  let default_v6 =
    Rz_verify.Engine.verify_hop engine ~direction:`Import ~subject:10 ~remote:1
      ~prefix:(p "::/0") ~path:[| 1 |]
  in
  Alcotest.(check bool) "v6 default rejected" true
    (default_v6.status <> Rz_verify.Status.Verified)

let test_verify_very_long_path () =
  let rels = Rz_asrel.Rel_db.create () in
  let engine = Rz_verify.Engine.create (db_of "aut-num: AS10\nimport: from AS1 accept <.* AS99$>\n") rels in
  let path = Array.init 40 (fun i -> if i = 39 then 99 else i + 1) in
  let hop =
    Rz_verify.Engine.verify_hop engine ~direction:`Import ~subject:10 ~remote:1
      ~prefix:(p "192.0.2.0/24") ~path
  in
  Alcotest.(check string) "long path regex verifies" "verified"
    (Rz_verify.Status.class_label hop.status)

let test_verify_route_two_hop_loop_path () =
  (* malformed path with a repeated AS (loop): engine must not crash and
     reports hops for each adjacency *)
  let rels = Rz_asrel.Rel_db.create () in
  let engine = Rz_verify.Engine.create (db_of "aut-num: AS1\n") rels in
  let route = Rz_bgp.Route.make (p "192.0.2.0/24") [ 1; 2; 1 ] in
  match Rz_verify.Engine.verify_route engine route with
  | Some report -> Alcotest.(check int) "hops reported" 4 (List.length report.hops)
  | None -> Alcotest.fail "unexpected exclusion"

(* ---------------- irrd / peval edges ---------------- *)

let test_irrd_empty_line_and_whitespace () =
  let db = db_of "aut-num: AS1\n" in
  Alcotest.(check bool) "blank query" true (Rz_irr.Irrd_query.answer db "   " = Rz_irr.Irrd_query.No_data)

let test_peval_empty_set () =
  let db = db_of "as-set: AS-EMPTY\n" in
  match Rz_irr.Filter_eval.eval_string db "AS-EMPTY" with
  | Ok r ->
    Alcotest.(check int) "no prefixes" 0 (List.length r.prefixes);
    Alcotest.(check int) "resolved (exists)" 0 (List.length r.unresolved)
  | Error e -> Alcotest.fail e

let test_peval_malformed () =
  let db = db_of "aut-num: AS1\n" in
  Alcotest.(check bool) "parse error surfaces" true
    (Result.is_error (Rz_irr.Filter_eval.eval_string db "AND AND"))

(* ---------------- generator determinism under load ---------------- *)

let test_world_regeneration_stable () =
  let params = { Rz_topology.Gen.default_params with n_tier1 = 2; n_mid = 10; n_stub = 20 } in
  let w1 = Rpslyzer.Pipeline.build_synthetic ~topo_params:params () in
  let w2 = Rpslyzer.Pipeline.build_synthetic ~topo_params:params () in
  List.iter2
    (fun (n1, t1) (n2, t2) ->
      Alcotest.(check string) "irr name" n1 n2;
      Alcotest.(check string) ("dump " ^ n1) t1 t2)
    w1.dumps w2.dumps;
  let routes w =
    List.concat_map (fun (d : Rz_bgp.Table_dump.t) -> d.routes) w.Rpslyzer.Pipeline.table_dumps
  in
  Alcotest.(check bool) "same collector routes" true
    (List.for_all2 Rz_bgp.Route.equal (routes w1) (routes w2))

let suite =
  [ Alcotest.test_case "default routes in trie" `Quick test_default_routes_in_trie;
    Alcotest.test_case "host routes" `Quick test_prefix_host_routes;
    Alcotest.test_case "asdot roundtrip" `Quick test_asn_asdot_roundtrip;
    Alcotest.test_case "range ops at extremes" `Quick test_range_op_full_lengths;
    Alcotest.test_case "case-insensitive keywords" `Quick test_case_insensitive_keywords;
    Alcotest.test_case "whitespace noise" `Quick test_whitespace_noise;
    Alcotest.test_case "deep filter nesting" `Quick test_filter_deep_nesting;
    Alcotest.test_case "empty braces rejected" `Quick test_empty_braced_term_rejected;
    Alcotest.test_case "default-route filter (AS14595)" `Quick test_verify_default_route_filter;
    Alcotest.test_case "very long path regex" `Quick test_verify_very_long_path;
    Alcotest.test_case "loop path tolerated" `Quick test_verify_route_two_hop_loop_path;
    Alcotest.test_case "irrd blank query" `Quick test_irrd_empty_line_and_whitespace;
    Alcotest.test_case "peval empty set" `Quick test_peval_empty_set;
    Alcotest.test_case "peval malformed" `Quick test_peval_malformed;
    Alcotest.test_case "world regeneration stable" `Quick test_world_regeneration_stable ]
