(* Advanced verification-engine semantics: composite peerings, nested
   sets, afi lists, and the full Appendix-C route as a regression test. *)
module Db = Rz_irr.Db
module Rel_db = Rz_asrel.Rel_db
module Engine = Rz_verify.Engine
module Status = Rz_verify.Status
module Report = Rz_verify.Report

let p = Rz_net.Prefix.of_string_exn

let rels () =
  let t = Rel_db.create () in
  Rel_db.add_p2p t 100 200;
  Rel_db.set_clique t [ 100; 200 ];
  Rel_db.add_p2c t ~provider:100 ~customer:10;
  Rel_db.add_p2c t ~provider:200 ~customer:20;
  Rel_db.add_p2p t 10 20;
  Rel_db.add_p2c t ~provider:10 ~customer:1;
  Rel_db.add_p2c t ~provider:10 ~customer:2;
  t

let engine ?config rpsl = Engine.create ?config (Db.of_dumps [ ("TEST", rpsl) ]) (rels ())

let check_status name expected (hop : Report.hop) =
  Alcotest.(check string) name (Status.to_string expected) (Status.to_string hop.status)

let test_peering_except_expression () =
  (* from AS-ANY EXCEPT AS20: matches everyone but AS20 *)
  let e = engine "aut-num: AS10\nimport: from AS-ANY EXCEPT AS20 accept ANY\n" in
  check_status "non-excluded remote verifies" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:77
       ~prefix:(p "192.0.2.0/24") ~path:[| 77 |]);
  let excluded =
    Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
      ~prefix:(p "192.0.2.0/24") ~path:[| 20 |]
  in
  Alcotest.(check bool) "excluded remote does not verify" true
    (excluded.status <> Status.Verified)

let test_peering_or_expression () =
  let e = engine "aut-num: AS10\nimport: from AS20 OR AS77 accept ANY\n" in
  check_status "first alternative" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "192.0.2.0/24") ~path:[| 20 |]);
  check_status "second alternative" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:77
       ~prefix:(p "192.0.2.0/24") ~path:[| 77 |])

let test_peering_as_set_expression () =
  let e =
    engine
      "aut-num: AS10\nimport: from AS-PEERS accept ANY\n\nas-set: AS-PEERS\nmembers: AS20, AS77\n"
  in
  check_status "member matches" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:77
       ~prefix:(p "192.0.2.0/24") ~path:[| 77 |]);
  let non_member =
    Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:88
      ~prefix:(p "192.0.2.0/24") ~path:[| 88 |]
  in
  Alcotest.(check bool) "non-member misses" true (non_member.status <> Status.Verified)

let test_second_rule_matches () =
  let e =
    engine
      "aut-num: AS10\nimport: from AS20 accept { 198.51.100.0/24 }\nimport: from AS20 accept { 192.0.2.0/24 }\n"
  in
  check_status "later rule wins" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "192.0.2.0/24") ~path:[| 20 |])

let test_second_peering_in_factor () =
  (* AS8323 style: two from-clauses sharing one filter *)
  let e =
    engine "aut-num: AS10\nimport: from AS88 from AS20 accept { 192.0.2.0/24 }\n"
  in
  check_status "second peering matches" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "192.0.2.0/24") ~path:[| 20 |])

let test_nested_filter_sets () =
  let e =
    engine
      "aut-num: AS10\nimport: from AS20 accept FLTR-OUTER\n\n\
       filter-set: FLTR-OUTER\nfilter: FLTR-INNER AND ANY\n\n\
       filter-set: FLTR-INNER\nfilter: { 192.0.2.0/24^+ }\n"
  in
  check_status "filter-sets nest" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "192.0.2.0/24") ~path:[| 20 |]);
  let e2 =
    engine
      "aut-num: AS10\nimport: from AS20 accept FLTR-OUTER\n\n\
       filter-set: FLTR-OUTER\nfilter: FLTR-GONE\n"
  in
  check_status "missing nested filter-set is unrecorded"
    (Status.Unrecorded (Status.Unrecorded_filter_set "FLTR-GONE"))
    (Engine.verify_hop e2 ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "192.0.2.0/24") ~path:[| 20 |])

let test_route_set_minus_op () =
  let e =
    engine
      "aut-num: AS10\nimport: from AS20 accept RS-NETS^-\n\n\
       route-set: RS-NETS\nmembers: 192.0.2.0/24\n"
  in
  let exact =
    Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
      ~prefix:(p "192.0.2.0/24") ~path:[| 20 |]
  in
  Alcotest.(check bool) "^- excludes the exact prefix" true (exact.status <> Status.Verified);
  check_status "^- takes more-specifics" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "192.0.2.128/25") ~path:[| 20 |])

let test_v6_route_set () =
  let e =
    engine
      "aut-num: AS10\nmp-import: afi ipv6.unicast from AS20 accept RS-SIX\n\n\
       route-set: RS-SIX\nmp-members: 2001:db8::/32^+\n"
  in
  check_status "v6 route-set member" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "2001:db8:1::/48") ~path:[| 20 |])

let test_afi_list_both_families () =
  let e =
    engine
      "aut-num: AS10\nmp-import: afi ipv4.unicast, ipv6.unicast from AS20 accept ANY\n"
  in
  check_status "v4 via afi list" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "192.0.2.0/24") ~path:[| 20 |]);
  check_status "v6 via afi list" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "2001:db8::/32") ~path:[| 20 |])

let test_protocol_prefix_is_transparent () =
  let e = engine "aut-num: AS10\nimport: protocol BGP4 into BGP4 from AS20 accept ANY\n" in
  check_status "protocol prefix ignored for matching" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "192.0.2.0/24") ~path:[| 20 |])

let test_community_action_is_not_skip () =
  (* community in ACTION position is interpretable; only community
     FILTERS are skipped *)
  let e =
    engine
      "aut-num: AS10\nimport: from AS20 action community .= { 65000:1 }; accept ANY\n"
  in
  check_status "community action fine" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "192.0.2.0/24") ~path:[| 20 |])

let test_hierarchical_set_names_resolve () =
  let e =
    engine
      "aut-num: AS10\nimport: from AS20 accept AS20:AS-CUST\n\n\
       as-set: AS20:AS-CUST\nmembers: AS77\n\n\
       route: 192.0.2.0/24\norigin: AS77\n"
  in
  check_status "hierarchical as-set filter" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "192.0.2.0/24") ~path:[| 20; 77 |])

let test_verified_hop_reports_attrs () =
  (* the AS8323 pattern: pref=50 on the matching peering -> LocalPref
     65485 via the RFC inversion *)
  let e =
    engine
      "aut-num: AS10\nimport: from AS20 action pref=50; community .= { 65000:7 }; accept ANY\n"
  in
  let hop =
    Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
      ~prefix:(p "192.0.2.0/24") ~path:[| 20 |]
  in
  check_status "verifies" Status.Verified hop;
  match hop.attrs with
  | Some attrs ->
    Alcotest.(check (option int)) "LocalPref inverted" (Some 65485)
      attrs.Rz_policy.Action_eval.local_pref;
    Alcotest.(check (list (pair int int))) "community" [ (65000, 7) ] attrs.communities
  | None -> Alcotest.fail "expected computed attributes"

let test_unmatched_peering_actions_not_applied () =
  (* two peerings share the factor; only the matching one's actions count *)
  let e =
    engine
      "aut-num: AS10\nimport: from AS88 action pref=10; from AS20 action pref=50; accept ANY\n"
  in
  let hop =
    Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
      ~prefix:(p "192.0.2.0/24") ~path:[| 20 |]
  in
  match hop.attrs with
  | Some attrs ->
    Alcotest.(check (option int)) "only AS20's pref applies" (Some 65485)
      attrs.Rz_policy.Action_eval.local_pref
  | None -> Alcotest.fail "expected attributes"

(* ---------------- the full Appendix C route ---------------- *)

let appendix_c_engine () =
  let rpsl =
    "aut-num: AS141893\n\
     export: to AS58552 announce AS141893\n\
     export: to AS131755 announce AS141893\n\
     import: from AS58552 accept ANY\n\
     \n\
     aut-num: AS56239\n\
     export: to AS133840 announce AS56239\n\
     import: from AS55685 accept ANY\n\
     import: from AS133840 accept ANY\n\
     \n\
     aut-num: AS133840\n\
     import: from AS55685 accept ANY\n\
     export: to AS55685 announce AS133840\n\
     \n\
     aut-num: AS6939\n\
     import: from AS-ANY accept ANY\n\
     export: to AS-ANY announce AS-HURRICANE\n\
     \n\
     aut-num: AS1299\n\
     import: from AS6939 accept ANY\n\
     export: to AS3257 announce AS1299:AS-TWELVE99-CUSTOMER-V4 AND AS1299:AS-TWELVE99-PEER-V4\n\
     \n\
     aut-num: AS3257\n\
     import: from AS12 accept AS12\n\
     \n\
     as-set: AS-HURRICANE\n\
     members: AS6939, AS133840, AS56239, AS141893\n\
     \n\
     route: 103.162.114.0/23\norigin: AS141893\n\
     \n\
     route: 27.100.0.0/24\norigin: AS56239\n\
     \n\
     route: 184.104.0.0/15\norigin: AS6939\n"
  in
  let rels = Rel_db.create () in
  Rel_db.add_p2c rels ~provider:56239 ~customer:141893;
  Rel_db.add_p2c rels ~provider:56239 ~customer:137296;
  Rel_db.add_p2c rels ~provider:133840 ~customer:56239;
  Rel_db.add_p2c rels ~provider:6939 ~customer:133840;
  Rel_db.add_p2p rels 6939 1299;
  Rel_db.add_p2p rels 1299 3257;
  Rel_db.add_p2c rels ~provider:55685 ~customer:56239;
  Rel_db.add_p2c rels ~provider:55685 ~customer:133840;
  Rel_db.set_clique rels [ 1299; 3257 ];
  Engine.create (Db.of_dumps [ ("MIXED", rpsl) ]) rels

let test_appendix_c_route () =
  let engine = appendix_c_engine () in
  let route =
    Rz_bgp.Route.make (p "103.162.114.0/23") [ 3257; 1299; 6939; 133840; 56239; 141893 ]
  in
  match Engine.verify_route engine route with
  | None -> Alcotest.fail "route excluded"
  | Some report ->
    let expected =
      (* origin-side first: (direction, from, to, status class) *)
      [ (`Export, 141893, 56239, "unverified");
        (`Import, 141893, 56239, "safelisted");
        (`Export, 56239, 133840, "relaxed");
        (`Import, 56239, 133840, "safelisted");
        (`Export, 133840, 6939, "safelisted");
        (`Import, 133840, 6939, "verified");
        (`Export, 6939, 1299, "verified");
        (`Import, 6939, 1299, "verified");
        (`Export, 1299, 3257, "unrecorded");
        (`Import, 1299, 3257, "safelisted") ]
    in
    Alcotest.(check int) "10 hop checks" (List.length expected) (List.length report.hops);
    List.iter2
      (fun (direction, from_as, to_as, cls) (hop : Report.hop) ->
        Alcotest.(check bool)
          (Printf.sprintf "hop %d->%d direction" from_as to_as)
          true
          (hop.direction = direction && hop.from_as = from_as && hop.to_as = to_as);
        Alcotest.(check string)
          (Printf.sprintf "hop %d->%d class" from_as to_as)
          cls (Status.class_label hop.status))
      expected report.hops;
    (* the unrecorded export names the missing as-set, as in the paper *)
    let unrec =
      List.find (fun (h : Report.hop) -> Status.class_label h.status = "unrecorded") report.hops
    in
    Alcotest.(check bool) "names the missing set" true
      (List.exists
         (function
           | Report.Unrec (Status.Unrecorded_as_set name) ->
             name = "AS1299:AS-TWELVE99-CUSTOMER-V4" || name = "AS1299:AS-TWELVE99-PEER-V4"
           | _ -> false)
         unrec.items)

let suite =
  [ Alcotest.test_case "peering EXCEPT" `Quick test_peering_except_expression;
    Alcotest.test_case "peering OR" `Quick test_peering_or_expression;
    Alcotest.test_case "peering as-set" `Quick test_peering_as_set_expression;
    Alcotest.test_case "second rule matches" `Quick test_second_rule_matches;
    Alcotest.test_case "second peering in factor" `Quick test_second_peering_in_factor;
    Alcotest.test_case "nested filter-sets" `Quick test_nested_filter_sets;
    Alcotest.test_case "route-set ^- op" `Quick test_route_set_minus_op;
    Alcotest.test_case "v6 route-set" `Quick test_v6_route_set;
    Alcotest.test_case "afi list both families" `Quick test_afi_list_both_families;
    Alcotest.test_case "protocol prefix transparent" `Quick test_protocol_prefix_is_transparent;
    Alcotest.test_case "community action not skipped" `Quick test_community_action_is_not_skip;
    Alcotest.test_case "hierarchical set names" `Quick test_hierarchical_set_names_resolve;
    Alcotest.test_case "verified hop attrs" `Quick test_verified_hop_reports_attrs;
    Alcotest.test_case "only matching actions apply" `Quick test_unmatched_peering_actions_not_applied;
    Alcotest.test_case "Appendix C full route" `Quick test_appendix_c_route ]
