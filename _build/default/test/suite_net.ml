(* Tests for rz_net: ASNs, addresses, prefixes, range operators, the
   prefix trie, afi matching, martians. *)
open Rz_net

let prefix = Alcotest.testable Prefix.pp Prefix.equal
let p = Prefix.of_string_exn

(* ---------------- ASN ---------------- *)

let test_asn_parse () =
  Alcotest.(check int) "AS prefix" 65000 (Asn.of_string_exn "AS65000");
  Alcotest.(check int) "lowercase" 65000 (Asn.of_string_exn "as65000");
  Alcotest.(check int) "bare decimal" 12 (Asn.of_string_exn "12");
  Alcotest.(check int) "asdot" ((1 lsl 16) lor 5) (Asn.of_string_exn "1.5");
  Alcotest.(check int) "asdot with AS" ((2 lsl 16) lor 3) (Asn.of_string_exn "AS2.3")

let test_asn_parse_errors () =
  let bad s = Alcotest.(check bool) s true (Result.is_error (Asn.of_string s)) in
  bad "";
  bad "AS";
  bad "ASX";
  bad "AS-FOO";
  bad "4294967296";
  bad "-1";
  bad "1.70000"

let test_asn_print () =
  Alcotest.(check string) "to_string" "AS65000" (Asn.to_string 65000);
  Alcotest.(check string) "asdot small" "65000" (Asn.to_asdot 65000);
  Alcotest.(check string) "asdot large" "1.5" (Asn.to_asdot ((1 lsl 16) lor 5))

let test_asn_classes () =
  Alcotest.(check bool) "64512 private" true (Asn.is_private 64512);
  Alcotest.(check bool) "65534 private" true (Asn.is_private 65534);
  Alcotest.(check bool) "65535 not private" false (Asn.is_private 65535);
  Alcotest.(check bool) "65535 reserved" true (Asn.is_reserved 65535);
  Alcotest.(check bool) "0 reserved" true (Asn.is_reserved 0);
  Alcotest.(check bool) "23456 reserved" true (Asn.is_reserved 23456);
  Alcotest.(check bool) "15169 ordinary" false (Asn.is_private 15169 || Asn.is_reserved 15169)

(* ---------------- addresses ---------------- *)

let test_ipv4_roundtrip () =
  List.iter
    (fun s ->
      match Ipaddr.V4.of_string s with
      | Ok a -> Alcotest.(check string) s s (Ipaddr.V4.to_string a)
      | Error e -> Alcotest.fail e)
    [ "0.0.0.0"; "8.8.8.8"; "255.255.255.255"; "192.0.2.1" ]

let test_ipv4_errors () =
  let bad s = Alcotest.(check bool) s true (Result.is_error (Ipaddr.V4.of_string s)) in
  bad "1.2.3";
  bad "1.2.3.4.5";
  bad "256.1.1.1";
  bad "a.b.c.d";
  bad ""

let test_ipv6_roundtrip () =
  List.iter
    (fun (input, expect) ->
      match Ipaddr.V6.of_string input with
      | Ok a -> Alcotest.(check string) input expect (Ipaddr.V6.to_string a)
      | Error e -> Alcotest.fail e)
    [ ("::", "::");
      ("::1", "::1");
      ("2001:db8::", "2001:db8::");
      ("2001:0db8:0000:0000:0000:0000:0000:0001", "2001:db8::1");
      ("fe80::1:2:3:4", "fe80::1:2:3:4");
      ("1:2:3:4:5:6:7:8", "1:2:3:4:5:6:7:8") ]

let test_ipv6_errors () =
  let bad s = Alcotest.(check bool) s true (Result.is_error (Ipaddr.V6.of_string s)) in
  bad ":::";
  bad "1:2:3";
  bad "2001:db8::1::2";
  bad "12345::";
  bad "g::1"

let test_ipv6_bits () =
  match Ipaddr.V6.of_string "8000::" with
  | Ok a ->
    Alcotest.(check bool) "top bit" true (Ipaddr.V6.bit a 0);
    Alcotest.(check bool) "second bit" false (Ipaddr.V6.bit a 1)
  | Error e -> Alcotest.fail e

(* ---------------- prefixes ---------------- *)

let test_prefix_parse_print () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Prefix.to_string (p s)))
    [ "0.0.0.0/0"; "10.0.0.0/8"; "192.0.2.0/24"; "192.0.2.1/32"; "2001:db8::/32"; "::/0" ]

let test_prefix_masks_host_bits () =
  Alcotest.check prefix "host bits cleared" (p "10.0.0.0/8") (p "10.1.2.3/8");
  Alcotest.check prefix "v6 host bits cleared" (p "2001:db8::/32")
    (p "2001:db8:dead:beef::/32")

let test_prefix_contains () =
  Alcotest.(check bool) "/8 contains /24" true (Prefix.contains (p "10.0.0.0/8") (p "10.1.2.0/24"));
  Alcotest.(check bool) "self containment" true (Prefix.contains (p "10.0.0.0/8") (p "10.0.0.0/8"));
  Alcotest.(check bool) "/24 not contains /8" false (Prefix.contains (p "10.1.2.0/24") (p "10.0.0.0/8"));
  Alcotest.(check bool) "disjoint" false (Prefix.contains (p "10.0.0.0/8") (p "11.0.0.0/24"));
  Alcotest.(check bool) "cross family" false (Prefix.contains (p "0.0.0.0/0") (p "2001:db8::/32"));
  Alcotest.(check bool) "v6 contains" true (Prefix.contains (p "2001:db8::/32") (p "2001:db8:1::/48"))

let test_prefix_compare_orders_v4_first () =
  Alcotest.(check bool) "v4 < v6" true (Prefix.compare (p "255.0.0.0/8") (p "::/0") < 0)

let test_prefix_bad_input () =
  let bad s = Alcotest.(check bool) s true (Result.is_error (Prefix.of_string s)) in
  bad "10.0.0.0";
  bad "10.0.0.0/33";
  bad "2001:db8::/129";
  bad "banana/8";
  bad "10.0.0.0/x"

let test_prefix_subnets () =
  let subs = Prefix.subnets (p "10.0.0.0/8") 10 in
  Alcotest.(check int) "4 /10s" 4 (List.length subs);
  Alcotest.check prefix "first" (p "10.0.0.0/10") (List.nth subs 0);
  Alcotest.check prefix "last" (p "10.192.0.0/10") (List.nth subs 3);
  List.iter
    (fun sub -> Alcotest.(check bool) "contained" true (Prefix.contains (p "10.0.0.0/8") sub))
    subs

let test_prefix_subnets_v6 () =
  let subs = Prefix.subnets (p "2001:db8::/32") 34 in
  Alcotest.(check int) "4 /34s" 4 (List.length subs);
  List.iter
    (fun sub -> Alcotest.(check bool) "contained" true (Prefix.contains (p "2001:db8::/32") sub))
    subs

(* ---------------- range operators ---------------- *)

let rop s = match Range_op.parse s with Ok o -> o | Error e -> Alcotest.fail e

let test_range_op_parse () =
  Alcotest.(check bool) "empty = none" true (rop "" = Range_op.None_);
  Alcotest.(check bool) "^-" true (rop "^-" = Range_op.Minus);
  Alcotest.(check bool) "^+" true (rop "^+" = Range_op.Plus);
  Alcotest.(check bool) "^24" true (rop "^24" = Range_op.Exact 24);
  Alcotest.(check bool) "^24-32" true (rop "^24-32" = Range_op.Range (24, 32));
  Alcotest.(check bool) "no caret" true (Result.is_error (Range_op.parse "24"));
  Alcotest.(check bool) "inverted" true (Result.is_error (Range_op.parse "^32-24"))

let test_range_op_matches () =
  let declared = p "10.0.0.0/8" in
  let m op observed = Range_op.matches op ~declared ~observed:(p observed) in
  Alcotest.(check bool) "none exact" true (m Range_op.None_ "10.0.0.0/8");
  Alcotest.(check bool) "none rejects longer" false (m Range_op.None_ "10.1.0.0/16");
  Alcotest.(check bool) "minus rejects exact" false (m Range_op.Minus "10.0.0.0/8");
  Alcotest.(check bool) "minus takes longer" true (m Range_op.Minus "10.1.0.0/16");
  Alcotest.(check bool) "plus takes exact" true (m Range_op.Plus "10.0.0.0/8");
  Alcotest.(check bool) "plus takes longer" true (m Range_op.Plus "10.1.2.0/24");
  Alcotest.(check bool) "^16 exact len" true (m (Range_op.Exact 16) "10.1.0.0/16");
  Alcotest.(check bool) "^16 rejects /24" false (m (Range_op.Exact 16) "10.1.2.0/24");
  Alcotest.(check bool) "^12-16 takes /14" true (m (Range_op.Range (12, 16)) "10.4.0.0/14");
  Alcotest.(check bool) "^12-16 rejects /24" false (m (Range_op.Range (12, 16)) "10.1.2.0/24");
  Alcotest.(check bool) "outside declared" false (m Range_op.Plus "11.0.0.0/16")

let test_range_op_compose () =
  Alcotest.(check bool) "outer wins" true
    (Range_op.compose Range_op.Plus (Range_op.Exact 24) = Range_op.Plus);
  Alcotest.(check bool) "none keeps inner" true
    (Range_op.compose Range_op.None_ Range_op.Minus = Range_op.Minus)

let test_range_op_strings () =
  Alcotest.(check string) "plus" "^+" (Range_op.to_string Range_op.Plus);
  Alcotest.(check string) "range" "^24-32" (Range_op.to_string (Range_op.Range (24, 32)));
  Alcotest.(check bool) "more specific plus" true (Range_op.is_more_specific Range_op.Plus);
  Alcotest.(check bool) "none not" false (Range_op.is_more_specific Range_op.None_)

(* ---------------- prefix trie ---------------- *)

let test_trie_exact_and_covering () =
  let trie = Prefix_trie.create () in
  Prefix_trie.add trie (p "10.0.0.0/8") 1;
  Prefix_trie.add trie (p "10.1.0.0/16") 2;
  Prefix_trie.add trie (p "10.1.0.0/16") 3;
  Prefix_trie.add trie (p "2001:db8::/32") 4;
  Alcotest.(check (list int)) "exact multi" [ 3; 2 ] (Prefix_trie.exact trie (p "10.1.0.0/16"));
  Alcotest.(check (list int)) "exact none" [] (Prefix_trie.exact trie (p "10.2.0.0/16"));
  let covering = Prefix_trie.covering trie (p "10.1.2.0/24") in
  Alcotest.(check int) "3 covering entries" 3 (List.length covering);
  Alcotest.check prefix "least specific first" (p "10.0.0.0/8") (fst (List.hd covering));
  Alcotest.(check int) "v6 isolated" 1 (List.length (Prefix_trie.covering trie (p "2001:db8:1::/48")))

let test_trie_covered_by () =
  let trie = Prefix_trie.create () in
  Prefix_trie.add trie (p "10.0.0.0/8") 1;
  Prefix_trie.add trie (p "10.1.0.0/16") 2;
  Prefix_trie.add trie (p "11.0.0.0/8") 3;
  let covered = Prefix_trie.covered_by trie (p "10.0.0.0/8") in
  Alcotest.(check int) "two inside /8" 2 (List.length covered);
  Alcotest.(check int) "all under /0" 3 (List.length (Prefix_trie.covered_by trie (p "0.0.0.0/0")))

let test_trie_length_iter_fold () =
  let trie = Prefix_trie.create () in
  Prefix_trie.add trie (p "10.0.0.0/8") 1;
  Prefix_trie.add trie (p "2001:db8::/32") 2;
  Alcotest.(check int) "length" 2 (Prefix_trie.length trie);
  let seen = ref 0 in
  Prefix_trie.iter (fun _ _ -> incr seen) trie;
  Alcotest.(check int) "iter" 2 !seen;
  Alcotest.(check int) "fold sum" 3 (Prefix_trie.fold (fun _ v acc -> v + acc) trie 0)

let trie_covering_is_sound =
  QCheck.Test.make ~name:"trie covering = brute-force contains" ~count:100
    QCheck.(int_range 1 100000)
    (fun seed ->
      let rng = Rz_util.Splitmix.create seed in
      let trie = Prefix_trie.create () in
      let entries = ref [] in
      for i = 0 to 30 do
        let len = 8 + Rz_util.Splitmix.int rng 17 in
        let addr = Rz_util.Splitmix.int rng (1 lsl 24) lsl 8 in
        let pfx = Prefix.v4 addr len in
        Prefix_trie.add trie pfx i;
        entries := (pfx, i) :: !entries
      done;
      let probe = Prefix.v4 (Rz_util.Splitmix.int rng (1 lsl 24) lsl 8) 24 in
      let got = List.sort compare (Prefix_trie.covering trie probe) in
      let expected =
        List.sort compare (List.filter (fun (pfx, _) -> Prefix.contains pfx probe) !entries)
      in
      got = expected)

(* ---------------- prefix aggregation ---------------- *)

let agg l = List.map Prefix.to_string (Prefix_agg.aggregate (List.map p l))

let test_agg_siblings () =
  Alcotest.(check (list string)) "two halves merge" [ "10.0.0.0/23" ]
    (agg [ "10.0.0.0/24"; "10.0.1.0/24" ]);
  Alcotest.(check (list string)) "cascade to /22" [ "10.0.0.0/22" ]
    (agg [ "10.0.0.0/24"; "10.0.1.0/24"; "10.0.2.0/24"; "10.0.3.0/24" ]);
  Alcotest.(check (list string)) "non-siblings stay" [ "10.0.1.0/24"; "10.0.2.0/24" ]
    (agg [ "10.0.1.0/24"; "10.0.2.0/24" ])

let test_agg_containment () =
  Alcotest.(check (list string)) "contained dropped" [ "10.0.0.0/8" ]
    (agg [ "10.0.0.0/8"; "10.1.0.0/16"; "10.2.3.0/24" ]);
  Alcotest.(check (list string)) "duplicates dropped" [ "10.0.0.0/24" ]
    (agg [ "10.0.0.0/24"; "10.0.0.0/24" ])

let test_agg_mixed_families () =
  Alcotest.(check (list string)) "families independent"
    [ "10.0.0.0/23"; "2001:db8::/32" ]
    (agg [ "10.0.0.0/24"; "2001:db8::/32"; "10.0.1.0/24" ])

let test_agg_v6_siblings () =
  Alcotest.(check (list string)) "v6 merge across limb" [ "2001:db8::/63" ]
    (agg [ "2001:db8:0:0::/64"; "2001:db8:0:1::/64" ]);
  Alcotest.(check (list string)) "v6 long lengths" [ "2001:db8::/127" ]
    (agg [ "2001:db8::/128"; "2001:db8::1/128" ])

let test_agg_sibling_parent () =
  let pfx = p "10.0.1.0/24" in
  Alcotest.(check (option string)) "sibling" (Some "10.0.0.0/24")
    (Option.map Prefix.to_string (Prefix_agg.sibling pfx));
  Alcotest.(check (option string)) "parent" (Some "10.0.0.0/23")
    (Option.map Prefix.to_string (Prefix_agg.parent pfx));
  Alcotest.(check (option string)) "default has no parent" None
    (Option.map Prefix.to_string (Prefix_agg.parent (p "0.0.0.0/0")))

let agg_preserves_space =
  QCheck.Test.make ~name:"aggregation preserves the address set" ~count:200
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 25) (pair (int_range 0 0xFFFF) (int_range 16 28))))
    (fun specs ->
      let prefixes = List.map (fun (a16, len) -> Prefix.v4 (a16 lsl 16) len) specs in
      let out = Prefix_agg.aggregate prefixes in
      (* every input is covered by the output, and the output is stable *)
      List.for_all (fun pfx -> List.exists (fun q -> Prefix.contains q pfx) out) prefixes
      && Prefix_agg.aggregate out = out
      && Prefix_agg.covers_same_space prefixes out)

let agg_is_minimal =
  QCheck.Test.make ~name:"aggregation leaves no siblings or containment" ~count:200
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 25) (pair (int_range 0 0xFFFF) (int_range 16 28))))
    (fun specs ->
      let prefixes = List.map (fun (a16, len) -> Prefix.v4 (a16 lsl 16) len) specs in
      let out = Prefix_agg.aggregate prefixes in
      let no_containment =
        List.for_all
          (fun a -> List.for_all (fun b -> a == b || not (Prefix.contains a b)) out)
          out
      in
      let no_siblings =
        List.for_all
          (fun a ->
            match Prefix_agg.sibling a with
            | Some s -> not (List.exists (Prefix.equal s) out)
            | None -> true)
          out
      in
      no_containment && no_siblings)

(* ---------------- afi ---------------- *)

let afi s = match Afi.parse s with Ok a -> a | Error e -> Alcotest.fail e

let test_afi_parse () =
  Alcotest.(check string) "any" "any" (Afi.to_string (afi "any"));
  Alcotest.(check string) "ipv4.unicast" "ipv4.unicast" (Afi.to_string (afi "IPv4.Unicast"));
  Alcotest.(check string) "ipv6" "ipv6" (Afi.to_string (afi "ipv6"));
  Alcotest.(check bool) "bad family" true (Result.is_error (Afi.parse "ipv5"));
  Alcotest.(check bool) "bad sub" true (Result.is_error (Afi.parse "ipv4.anycast"))

let test_afi_parse_list () =
  match Afi.parse_list "ipv4.unicast, ipv6.unicast" with
  | Ok [ a; b ] ->
    Alcotest.(check string) "first" "ipv4.unicast" (Afi.to_string a);
    Alcotest.(check string) "second" "ipv6.unicast" (Afi.to_string b)
  | _ -> Alcotest.fail "expected two afis"

let test_afi_matching () =
  Alcotest.(check bool) "any matches v4" true (Afi.matches_prefix Afi.any (p "10.0.0.0/8"));
  Alcotest.(check bool) "any matches v6" true (Afi.matches_prefix Afi.any (p "2001:db8::/32"));
  Alcotest.(check bool) "v4 rejects v6" false
    (Afi.matches_prefix Afi.ipv4_unicast (p "2001:db8::/32"));
  Alcotest.(check bool) "v6 accepts v6" true
    (Afi.matches_prefix Afi.ipv6_unicast (p "2001:db8::/32"));
  Alcotest.(check bool) "multicast rejects unicast routes" false
    (Afi.matches_prefix (afi "ipv4.multicast") (p "10.0.0.0/8"));
  Alcotest.(check bool) "empty list = no restriction" true (Afi.matches_any [] (p "10.0.0.0/8"));
  Alcotest.(check bool) "list any-of" true
    (Afi.matches_any [ Afi.ipv6_unicast; Afi.ipv4_unicast ] (p "10.0.0.0/8"))

(* ---------------- martians ---------------- *)

let test_martians () =
  Alcotest.(check bool) "rfc1918" true (Martian.is_martian (p "10.1.2.0/24"));
  Alcotest.(check bool) "loopback" true (Martian.is_martian (p "127.0.0.0/8"));
  Alcotest.(check bool) "long v4" true (Martian.is_martian (p "8.8.8.0/25"));
  Alcotest.(check bool) "public /24 fine" false (Martian.is_martian (p "8.8.8.0/24"));
  Alcotest.(check bool) "doc v6" true (Martian.is_martian (p "2001:db8::/32"));
  Alcotest.(check bool) "long v6" true (Martian.is_martian (p "2a00::/64"));
  Alcotest.(check bool) "public v6 fine" false (Martian.is_martian (p "2a00::/32"))

let suite =
  [ Alcotest.test_case "asn parse" `Quick test_asn_parse;
    Alcotest.test_case "asn parse errors" `Quick test_asn_parse_errors;
    Alcotest.test_case "asn print" `Quick test_asn_print;
    Alcotest.test_case "asn classes" `Quick test_asn_classes;
    Alcotest.test_case "ipv4 roundtrip" `Quick test_ipv4_roundtrip;
    Alcotest.test_case "ipv4 errors" `Quick test_ipv4_errors;
    Alcotest.test_case "ipv6 roundtrip" `Quick test_ipv6_roundtrip;
    Alcotest.test_case "ipv6 errors" `Quick test_ipv6_errors;
    Alcotest.test_case "ipv6 bits" `Quick test_ipv6_bits;
    Alcotest.test_case "prefix parse/print" `Quick test_prefix_parse_print;
    Alcotest.test_case "prefix canonical" `Quick test_prefix_masks_host_bits;
    Alcotest.test_case "prefix contains" `Quick test_prefix_contains;
    Alcotest.test_case "prefix ordering" `Quick test_prefix_compare_orders_v4_first;
    Alcotest.test_case "prefix bad input" `Quick test_prefix_bad_input;
    Alcotest.test_case "prefix subnets" `Quick test_prefix_subnets;
    Alcotest.test_case "prefix subnets v6" `Quick test_prefix_subnets_v6;
    Alcotest.test_case "range op parse" `Quick test_range_op_parse;
    Alcotest.test_case "range op matches" `Quick test_range_op_matches;
    Alcotest.test_case "range op compose" `Quick test_range_op_compose;
    Alcotest.test_case "range op strings" `Quick test_range_op_strings;
    Alcotest.test_case "trie exact/covering" `Quick test_trie_exact_and_covering;
    Alcotest.test_case "trie covered_by" `Quick test_trie_covered_by;
    Alcotest.test_case "trie length/iter/fold" `Quick test_trie_length_iter_fold;
    QCheck_alcotest.to_alcotest trie_covering_is_sound;
    Alcotest.test_case "agg siblings" `Quick test_agg_siblings;
    Alcotest.test_case "agg containment" `Quick test_agg_containment;
    Alcotest.test_case "agg mixed families" `Quick test_agg_mixed_families;
    Alcotest.test_case "agg v6" `Quick test_agg_v6_siblings;
    Alcotest.test_case "agg sibling/parent" `Quick test_agg_sibling_parent;
    QCheck_alcotest.to_alcotest agg_preserves_space;
    QCheck_alcotest.to_alcotest agg_is_minimal;
    Alcotest.test_case "afi parse" `Quick test_afi_parse;
    Alcotest.test_case "afi parse list" `Quick test_afi_parse_list;
    Alcotest.test_case "afi matching" `Quick test_afi_matching;
    Alcotest.test_case "martians" `Quick test_martians ]
