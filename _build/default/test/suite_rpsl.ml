(* Tests for rz_rpsl: dump reader (continuations, comments, errors) and
   set-name validation. *)
open Rz_rpsl

let parse = Reader.parse_string

let test_single_object () =
  let r = parse "aut-num: AS65000\nas-name: TEST\n" in
  Alcotest.(check int) "one object" 1 (List.length r.objects);
  let obj = List.hd r.objects in
  Alcotest.(check string) "class" "aut-num" obj.Obj.cls;
  Alcotest.(check string) "name" "AS65000" obj.name;
  Alcotest.(check (option string)) "as-name" (Some "TEST") (Obj.value obj "as-name")

let test_multiple_objects () =
  let r = parse "aut-num: AS1\n\n\nroute: 10.0.0.0/8\norigin: AS1\n\nas-set: AS-X\n" in
  Alcotest.(check int) "three objects" 3 (List.length r.objects);
  Alcotest.(check (list string)) "classes" [ "aut-num"; "route"; "as-set" ]
    (List.map (fun o -> o.Obj.cls) r.objects)

let test_continuation_lines () =
  let text = "as-set: AS-FOO\nmembers: AS1,\n AS2,\n\tAS3,\n+AS4\n" in
  let r = parse text in
  let obj = List.hd r.objects in
  (* folded value keeps logical lines joined by \n *)
  let members = Option.get (Obj.value obj "members") in
  Alcotest.(check string) "folded" "AS1,\nAS2,\nAS3,\nAS4" members

let test_plus_continuation_empty () =
  (* a '+' alone continues with an empty line and must not add content *)
  let r = parse "descr: line1\n+\n+ line2\n" in
  let obj = List.hd r.objects in
  Alcotest.(check (option string)) "value" (Some "line1\nline2") (Obj.value obj "descr")

let test_comments_stripped () =
  let r = parse "aut-num: AS1 # trailing comment\nas-name: X#y\n" in
  let obj = List.hd r.objects in
  Alcotest.(check string) "name clean" "AS1" obj.Obj.name;
  Alcotest.(check (option string)) "attr clean" (Some "X") (Obj.value obj "as-name")

let test_percent_lines_ignored () =
  let r = parse "% whois server remark\naut-num: AS1\n% another\nas-name: X\n" in
  Alcotest.(check int) "one object" 1 (List.length r.objects);
  Alcotest.(check int) "no errors" 0 (List.length r.errors);
  Alcotest.(check (option string)) "attrs intact" (Some "X")
    (Obj.value (List.hd r.objects) "as-name")

let test_multivalued_attrs () =
  let r = parse "aut-num: AS1\nimport: from AS2 accept ANY\nimport: from AS3 accept ANY\n" in
  let obj = List.hd r.objects in
  Alcotest.(check int) "two imports" 2 (List.length (Obj.values obj "import"))

let test_error_lines_recorded () =
  let r = parse "aut-num: AS1\nthis line has no colon\nas-name: X\n" in
  Alcotest.(check int) "one error" 1 (List.length r.errors);
  Alcotest.(check int) "object survives" 1 (List.length r.objects);
  Alcotest.(check (option string)) "later attr kept" (Some "X")
    (Obj.value (List.hd r.objects) "as-name")

let test_bad_key_recorded () =
  let r = parse "aut-num: AS1\nbad key: value\n" in
  Alcotest.(check int) "one error" 1 (List.length r.errors)

let test_continuation_outside_object () =
  let r = parse "  stray continuation\naut-num: AS1\n" in
  Alcotest.(check int) "error recorded" 1 (List.length r.errors);
  Alcotest.(check int) "object parsed" 1 (List.length r.objects)

let test_line_numbers () =
  let r = parse "\n\naut-num: AS1\n\nroute: 10.0.0.0/8\norigin: AS1\n" in
  Alcotest.(check (list int)) "line numbers" [ 3; 5 ]
    (List.map (fun o -> o.Obj.line) r.objects)

let test_keys_lowercased () =
  let r = parse "AUT-NUM: AS1\nAS-NAME: X\n" in
  let obj = List.hd r.objects in
  Alcotest.(check string) "class lower" "aut-num" obj.Obj.cls;
  Alcotest.(check (option string)) "lookup by any case" (Some "X") (Obj.value obj "As-Name")

let test_routing_class_detection () =
  Alcotest.(check bool) "aut-num" true (Obj.is_routing_class "aut-num");
  Alcotest.(check bool) "route6" true (Obj.is_routing_class "ROUTE6");
  Alcotest.(check bool) "person" false (Obj.is_routing_class "person")

let test_crlf_line_endings () =
  let r = parse "aut-num: AS1\r\nas-name: X\r\n\r\nroute: 10.0.0.0/8\r\norigin: AS1\r\n" in
  Alcotest.(check int) "two objects" 2 (List.length r.objects);
  Alcotest.(check int) "no errors" 0 (List.length r.errors);
  Alcotest.(check (option string)) "values clean of CR" (Some "X")
    (Obj.value (List.hd r.objects) "as-name")

(* ---------------- set names ---------------- *)

let test_set_name_valid () =
  Alcotest.(check bool) "plain as-set" true (Set_name.is_valid Set_name.As_set "AS-FOO");
  Alcotest.(check bool) "hierarchical" true
    (Set_name.is_valid Set_name.As_set "AS8267:AS-KRAKOW");
  Alcotest.(check bool) "set first" true (Set_name.is_valid Set_name.As_set "AS-FOO:AS123");
  Alcotest.(check bool) "route-set" true (Set_name.is_valid Set_name.Route_set "RS-BAR");
  Alcotest.(check bool) "peering-set" true (Set_name.is_valid Set_name.Peering_set "PRNG-X");
  Alcotest.(check bool) "filter-set" true (Set_name.is_valid Set_name.Filter_set "FLTR-MARTIAN-V4")

let test_set_name_invalid () =
  Alcotest.(check bool) "no prefix" false (Set_name.is_valid Set_name.As_set "FOO");
  Alcotest.(check bool) "only asns" false (Set_name.is_valid Set_name.As_set "AS1:AS2");
  Alcotest.(check bool) "reserved AS-ANY" false (Set_name.is_valid Set_name.As_set "AS-ANY");
  Alcotest.(check bool) "reserved RS-ANY" false (Set_name.is_valid Set_name.Route_set "RS-ANY");
  Alcotest.(check bool) "wrong kind" false (Set_name.is_valid Set_name.As_set "RS-FOO");
  Alcotest.(check bool) "empty suffix" false (Set_name.is_valid Set_name.As_set "AS-");
  Alcotest.(check bool) "bad chars" false (Set_name.is_valid Set_name.As_set "AS-F OO")

let test_set_name_classify () =
  Alcotest.(check bool) "as-set" true (Set_name.classify "AS1:AS-X" = Some Set_name.As_set);
  Alcotest.(check bool) "route-set" true (Set_name.classify "RS-Y" = Some Set_name.Route_set);
  Alcotest.(check bool) "peering-set" true (Set_name.classify "PRNG-Z" = Some Set_name.Peering_set);
  Alcotest.(check bool) "filter-set" true (Set_name.classify "FLTR-W" = Some Set_name.Filter_set);
  Alcotest.(check bool) "plain asn" true (Set_name.classify "AS123" = None);
  (* the last set-prefixed component decides *)
  Alcotest.(check bool) "last wins" true
    (Set_name.classify "AS-X:RS-Y" = Some Set_name.Route_set)

let test_set_name_canonical () =
  Alcotest.(check string) "uppercased" "AS-FOO" (Set_name.canonical "as-Foo");
  Alcotest.(check (list string)) "components" [ "AS1"; "AS-X" ] (Set_name.components "AS1:AS-X")

let test_attr_make () =
  let a = Attr.make "  IMPORT " " from AS1 accept ANY " in
  Alcotest.(check string) "key lower+strip" "import" a.Attr.key;
  Alcotest.(check string) "value strip" "from AS1 accept ANY" a.value

(* ---------------- templates ---------------- *)

let check_obj text =
  match (Reader.parse_string text).objects with
  | [ obj ] -> Template.check obj
  | _ -> Alcotest.fail "expected one object"

let test_template_clean_object () =
  match check_obj "aut-num: AS1\nas-name: X\nimport: from AS2 accept ANY\nmnt-by: M\nsource: TEST\n" with
  | Some [] -> ()
  | Some problems ->
    Alcotest.failf "unexpected problems: %s"
      (String.concat "; " (List.map Template.problem_to_string problems))
  | None -> Alcotest.fail "aut-num has a template"

let test_template_missing_mandatory () =
  match check_obj "aut-num: AS1\nimport: from AS2 accept ANY\n" with
  | Some problems ->
    let missing = List.filter_map (function Template.Missing_mandatory k -> Some k | _ -> None) problems in
    Alcotest.(check (list string)) "missing" [ "as-name"; "mnt-by"; "source" ] missing
  | None -> Alcotest.fail "template expected"

let test_template_repeated_single () =
  match check_obj "route: 10.0.0.0/8\norigin: AS1\norigin: AS2\nmnt-by: M\nsource: T\n" with
  | Some problems ->
    Alcotest.(check bool) "repeated origin" true
      (List.mem (Template.Repeated_single "origin") problems)
  | None -> Alcotest.fail "template expected"

let test_template_unknown_attribute () =
  match check_obj "as-set: AS-X\nmembers: AS1\nfrobnicate: yes\nmnt-by: M\nsource: T\n" with
  | Some problems ->
    Alcotest.(check bool) "unknown attr" true
      (List.mem (Template.Unknown_attribute "frobnicate") problems)
  | None -> Alcotest.fail "template expected"

let test_template_unmodelled_class () =
  Alcotest.(check bool) "person has no template" true
    (check_obj "person: John Doe\nnic-hdl: JD1\n" = None)

let test_template_mntner () =
  match check_obj "mntner: MNT-X\nmnt-by: MNT-X\nsource: T\n" with
  | Some problems ->
    Alcotest.(check bool) "auth mandatory" true
      (List.mem (Template.Missing_mandatory "auth") problems)
  | None -> Alcotest.fail "template expected"

let reader_never_raises =
  QCheck.Test.make ~name:"reader never raises on arbitrary text" ~count:300
    (QCheck.make QCheck.Gen.(string_size ~gen:printable (int_range 0 200)))
    (fun text ->
      let r = parse text in
      List.length r.objects >= 0 && List.length r.errors >= 0)

let suite =
  [ Alcotest.test_case "single object" `Quick test_single_object;
    Alcotest.test_case "multiple objects" `Quick test_multiple_objects;
    Alcotest.test_case "continuation lines" `Quick test_continuation_lines;
    Alcotest.test_case "plus continuation" `Quick test_plus_continuation_empty;
    Alcotest.test_case "comments stripped" `Quick test_comments_stripped;
    Alcotest.test_case "percent lines ignored" `Quick test_percent_lines_ignored;
    Alcotest.test_case "multivalued attrs" `Quick test_multivalued_attrs;
    Alcotest.test_case "error lines recorded" `Quick test_error_lines_recorded;
    Alcotest.test_case "bad key recorded" `Quick test_bad_key_recorded;
    Alcotest.test_case "stray continuation" `Quick test_continuation_outside_object;
    Alcotest.test_case "line numbers" `Quick test_line_numbers;
    Alcotest.test_case "keys lowercased" `Quick test_keys_lowercased;
    Alcotest.test_case "CRLF line endings" `Quick test_crlf_line_endings;
    Alcotest.test_case "routing classes" `Quick test_routing_class_detection;
    Alcotest.test_case "set names valid" `Quick test_set_name_valid;
    Alcotest.test_case "set names invalid" `Quick test_set_name_invalid;
    Alcotest.test_case "set name classify" `Quick test_set_name_classify;
    Alcotest.test_case "set name canonical" `Quick test_set_name_canonical;
    Alcotest.test_case "attr make" `Quick test_attr_make;
    Alcotest.test_case "template clean" `Quick test_template_clean_object;
    Alcotest.test_case "template missing" `Quick test_template_missing_mandatory;
    Alcotest.test_case "template repeated" `Quick test_template_repeated_single;
    Alcotest.test_case "template unknown attr" `Quick test_template_unknown_attribute;
    Alcotest.test_case "template unmodelled class" `Quick test_template_unmodelled_class;
    Alcotest.test_case "template mntner" `Quick test_template_mntner;
    QCheck_alcotest.to_alcotest reader_never_raises ]
