(* Tests for rz_synthirr: the generated RPSL parses cleanly, respects the
   configured personas, and reproduces the deliberate anomalies. *)
module Gen = Rz_topology.Gen
module Generate = Rz_synthirr.Generate
module Config = Rz_synthirr.Config
module Db = Rz_irr.Db

let params = { Gen.default_params with n_tier1 = 3; n_mid = 25; n_stub = 80 }
let world = lazy (Generate.generate (Gen.generate params))

let db = lazy (Db.of_dumps (Lazy.force world).dumps)

let test_thirteen_dumps_in_order () =
  let w = Lazy.force world in
  Alcotest.(check (list string)) "names and order" Generate.irr_names (List.map fst w.dumps)

let test_dumps_parse () =
  let w = Lazy.force world in
  List.iter
    (fun (irr, text) ->
      let parsed = Rz_rpsl.Reader.parse_string text in
      (* only the deliberately injected errors (all placed in RADB) may
         produce reader-level errors *)
      if irr <> "RADB" then
        Alcotest.(check int) (irr ^ " reader errors") 0 (List.length parsed.errors))
    w.dumps

let test_personas_no_aut_num () =
  let w = Lazy.force world in
  let database = Lazy.force db in
  Hashtbl.iter
    (fun asn (profile : Generate.profile) ->
      match profile.persona with
      | Generate.No_aut_num ->
        Alcotest.(check bool)
          (Printf.sprintf "AS%d absent" asn)
          true
          (Db.find_aut_num database asn = None)
      | _ ->
        Alcotest.(check bool)
          (Printf.sprintf "AS%d present" asn)
          true
          (Db.find_aut_num database asn <> None))
    w.profiles

let test_personas_rule_counts () =
  let w = Lazy.force world in
  let database = Lazy.force db in
  Hashtbl.iter
    (fun asn (profile : Generate.profile) ->
      match (profile.persona, Db.find_aut_num database asn) with
      | Generate.No_rules, Some an ->
        Alcotest.(check int) (Printf.sprintf "AS%d no rules" asn) 0 (Rz_ir.Ir.n_rules an)
      | Generate.Any_any, Some an ->
        Alcotest.(check int) (Printf.sprintf "AS%d any-any" asn) 2 (Rz_ir.Ir.n_rules an)
      | (Generate.Regular | Generate.Only_provider | Generate.Complex), Some an ->
        (* a rule-writing AS may still end up with zero rules when every
           neighbor it covers was dropped (the undeclared-peering knob) *)
        let neighbors = Rz_asrel.Rel_db.neighbors w.topo.rels asn in
        let has_kept_neighbor =
          List.exists (fun n -> not (List.mem n profile.dropped_neighbors)) neighbors
        in
        if has_kept_neighbor && profile.persona <> Generate.Only_provider then
          Alcotest.(check bool) (Printf.sprintf "AS%d has rules" asn) true
            (Rz_ir.Ir.n_rules an > 0)
      | _ -> ())
    w.profiles

let test_lacnic_has_no_rules () =
  let w = Lazy.force world in
  let lacnic = List.assoc "LACNIC" w.dumps in
  let parsed = Rz_rpsl.Reader.parse_string lacnic in
  List.iter
    (fun (o : Rz_rpsl.Obj.t) ->
      if o.cls = "aut-num" then begin
        Alcotest.(check int) "no imports" 0 (List.length (Rz_rpsl.Obj.values o "import"));
        Alcotest.(check int) "no exports" 0 (List.length (Rz_rpsl.Obj.values o "export"))
      end)
    parsed.objects

let test_only_provider_persona_rules () =
  let w = Lazy.force world in
  let database = Lazy.force db in
  let rels = w.topo.rels in
  Hashtbl.iter
    (fun asn (profile : Generate.profile) ->
      if profile.persona = Generate.Only_provider then
        match Db.find_aut_num database asn with
        | Some an ->
          (* every peering in its rules names one of its providers *)
          let providers = Rz_asrel.Rel_db.providers rels asn in
          List.iter
            (fun (rule : Rz_policy.Ast.rule) ->
              List.iter
                (fun (term : Rz_policy.Ast.term) ->
                  List.iter
                    (fun (factor : Rz_policy.Ast.factor) ->
                      List.iter
                        (fun (pa : Rz_policy.Ast.peering_action) ->
                          match pa.peering with
                          | Rz_policy.Ast.Peering_spec { as_expr = Rz_policy.Ast.Asn n; _ } ->
                            Alcotest.(check bool)
                              (Printf.sprintf "AS%d rule names provider" asn)
                              true (List.mem n providers)
                          | _ -> Alcotest.fail "unexpected peering shape")
                        factor.peerings)
                    term.factors)
                (Rz_policy.Ast.expr_terms rule.expr))
            (an.imports @ an.exports)
        | None -> ())
    w.profiles

let test_anomaly_objects_present () =
  let database = Lazy.force db in
  let ir = Db.ir database in
  let config = (Lazy.force world).config in
  Alcotest.(check bool) "empty set exists" true (Rz_ir.Ir.find_as_set ir "AS-EMPTY-1" <> None);
  Alcotest.(check bool) "loop set exists" true (Rz_ir.Ir.find_as_set ir "AS-LOOP-1-A" <> None);
  Alcotest.(check bool) "loop detected" true (Db.as_set_has_loop database "AS-LOOP-1-A");
  Alcotest.(check int) "deep chain depth" 6 (Db.as_set_depth database "AS-DEEP-1-1");
  (match Rz_ir.Ir.find_as_set ir "AS-HASANY-1" with
   | Some s -> Alcotest.(check bool) "ANY member flagged" true s.contains_any
   | None -> Alcotest.fail "AS-HASANY-1 missing");
  (* injected syntax errors and invalid names are recorded *)
  let errors = ir.Rz_ir.Ir.errors in
  Alcotest.(check bool) "syntax errors recorded" true
    (List.exists
       (fun (e : Rz_ir.Ir.error) ->
         match e.kind with Rz_ir.Ir.Syntax_error _ -> true | _ -> false)
       errors);
  Alcotest.(check bool) "invalid as-set names recorded" true
    (List.length
       (List.filter (fun (e : Rz_ir.Ir.error) -> e.kind = Rz_ir.Ir.Invalid_as_set_name) errors)
     >= config.Config.n_invalid_set_names)

let test_mbrs_by_ref_cooperative () =
  let database = Lazy.force db in
  Alcotest.(check bool) "cooperative set exists" true (Db.as_set_exists database "AS-COOPERATIVE");
  Alcotest.(check int) "two indirect members" 2
    (Db.Asn_set.cardinal (Db.flatten_as_set database "AS-COOPERATIVE"))

let test_deterministic () =
  let topo = Gen.generate params in
  let w1 = Generate.generate topo and w2 = Generate.generate topo in
  List.iter2
    (fun (n1, t1) (n2, t2) ->
      Alcotest.(check string) "same irr" n1 n2;
      Alcotest.(check string) ("same dump " ^ n1) t1 t2)
    w1.dumps w2.dumps

let test_route_objects_mostly_present () =
  let w = Lazy.force world in
  let database = Lazy.force db in
  let total = ref 0 and covered = ref 0 in
  Array.iter
    (fun asn ->
      if (Generate.profile_of w asn).persona <> Generate.No_aut_num then
        List.iter
          (fun prefix ->
            incr total;
            if List.mem asn (Db.exact_origins database prefix) then incr covered)
          (Gen.prefixes_of w.topo asn))
    w.topo.ases;
  let fraction = float_of_int !covered /. float_of_int !total in
  Alcotest.(check bool) "most route objects registered" true (fraction > 0.8);
  Alcotest.(check bool) "some are missing (staleness)" true (fraction < 1.0)

let test_config_extremes () =
  (* all-no-aut-num world: dumps still parse, no aut-nums *)
  let config =
    { Config.default with p_no_aut_num = 1.0; p_no_rules = 0.0; p_any_any = 0.0;
      p_complex = 0.0; p_only_provider = 0.0 }
  in
  let topo = Gen.generate { params with n_tier1 = 0; n_mid = 5; n_stub = 10 } in
  let w = Generate.generate ~config topo in
  let database = Db.of_dumps w.dumps in
  Array.iter
    (fun asn ->
      Alcotest.(check bool) "absent" true (Db.find_aut_num database asn = None))
    topo.ases

let suite =
  [ Alcotest.test_case "13 dumps in priority order" `Quick test_thirteen_dumps_in_order;
    Alcotest.test_case "dumps parse cleanly" `Quick test_dumps_parse;
    Alcotest.test_case "no_aut_num persona" `Quick test_personas_no_aut_num;
    Alcotest.test_case "persona rule counts" `Quick test_personas_rule_counts;
    Alcotest.test_case "LACNIC quirk" `Quick test_lacnic_has_no_rules;
    Alcotest.test_case "only-provider persona" `Quick test_only_provider_persona_rules;
    Alcotest.test_case "anomaly objects" `Quick test_anomaly_objects_present;
    Alcotest.test_case "mbrs-by-ref cooperative" `Quick test_mbrs_by_ref_cooperative;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "route object coverage" `Quick test_route_objects_mostly_present;
    Alcotest.test_case "config extremes" `Quick test_config_extremes ]
