(* Tests for rz_asrel: relationships, cones, clique, serial-1 format. *)
module Rel_db = Rz_asrel.Rel_db

let sample () =
  let t = Rel_db.create () in
  (*     1   2      tier1 peers
        / \ / \
       3   4  5     mids (3-4 peer)
      / \   \
     6   7   8      stubs            *)
  Rel_db.add_p2p t 1 2;
  Rel_db.add_p2c t ~provider:1 ~customer:3;
  Rel_db.add_p2c t ~provider:1 ~customer:4;
  Rel_db.add_p2c t ~provider:2 ~customer:4;
  Rel_db.add_p2c t ~provider:2 ~customer:5;
  Rel_db.add_p2p t 3 4;
  Rel_db.add_p2c t ~provider:3 ~customer:6;
  Rel_db.add_p2c t ~provider:3 ~customer:7;
  Rel_db.add_p2c t ~provider:4 ~customer:8;
  t

let test_relationship () =
  let t = sample () in
  Alcotest.(check bool) "p2c" true (Rel_db.relationship t 1 3 = Rel_db.A_provider_of_b);
  Alcotest.(check bool) "c2p" true (Rel_db.relationship t 3 1 = Rel_db.B_provider_of_a);
  Alcotest.(check bool) "peers" true (Rel_db.relationship t 3 4 = Rel_db.Peers);
  Alcotest.(check bool) "peers symmetric" true (Rel_db.relationship t 4 3 = Rel_db.Peers);
  Alcotest.(check bool) "unknown" true (Rel_db.relationship t 6 8 = Rel_db.Unknown)

let test_accessors () =
  let t = sample () in
  Alcotest.(check (list int)) "providers of 4" [ 1; 2 ] (Rel_db.providers t 4);
  Alcotest.(check (list int)) "customers of 3" [ 6; 7 ] (Rel_db.customers t 3);
  Alcotest.(check (list int)) "peers of 4" [ 3 ] (Rel_db.peers t 4);
  Alcotest.(check (list int)) "neighbors of 4" [ 1; 2; 3; 8 ] (Rel_db.neighbors t 4);
  Alcotest.(check int) "8 ases" 8 (List.length (Rel_db.ases t));
  Alcotest.(check bool) "3 is transit" true (Rel_db.is_transit t 3);
  Alcotest.(check bool) "6 is not" false (Rel_db.is_transit t 6)

let test_duplicate_edges_ignored () =
  let t = Rel_db.create () in
  Rel_db.add_p2c t ~provider:1 ~customer:2;
  Rel_db.add_p2c t ~provider:1 ~customer:2;
  Rel_db.add_p2p t 3 4;
  Rel_db.add_p2p t 4 3;
  Alcotest.(check (list int)) "one customer" [ 2 ] (Rel_db.customers t 1);
  Alcotest.(check (list int)) "one peer" [ 3 ] (Rel_db.peers t 4)

let test_customer_cone () =
  let t = sample () in
  Alcotest.(check (list int)) "cone of 3" [ 3; 6; 7 ]
    (Rel_db.Asn_set.elements (Rel_db.customer_cone t 3));
  Alcotest.(check (list int)) "cone of 1" [ 1; 3; 4; 6; 7; 8 ]
    (Rel_db.Asn_set.elements (Rel_db.customer_cone t 1));
  Alcotest.(check (list int)) "stub cone is itself" [ 6 ]
    (Rel_db.Asn_set.elements (Rel_db.customer_cone t 6));
  Alcotest.(check bool) "in cone" true (Rel_db.in_customer_cone t ~of_:1 8);
  Alcotest.(check bool) "not in cone" false (Rel_db.in_customer_cone t ~of_:3 8)

let test_cone_memo_invalidation () =
  let t = sample () in
  let before = Rel_db.Asn_set.cardinal (Rel_db.customer_cone t 3) in
  Rel_db.add_p2c t ~provider:3 ~customer:99;
  let after = Rel_db.Asn_set.cardinal (Rel_db.customer_cone t 3) in
  Alcotest.(check int) "cone grows after new edge" (before + 1) after

let test_clique () =
  let t = sample () in
  Rel_db.set_clique t [ 2; 1 ];
  Alcotest.(check (list int)) "sorted" [ 1; 2 ] (Rel_db.clique t);
  Alcotest.(check bool) "tier1" true (Rel_db.is_tier1 t 1);
  Alcotest.(check bool) "not tier1" false (Rel_db.is_tier1 t 3)

let test_infer_clique () =
  let t = sample () in
  let inferred = List.sort compare (Rel_db.infer_clique t) in
  Alcotest.(check (list int)) "provider-free mutually peering" [ 1; 2 ] inferred

let test_serial1_roundtrip () =
  let t = sample () in
  Rel_db.set_clique t [ 1; 2 ];
  let text = Rel_db.to_string t in
  match Rel_db.of_string text with
  | Error e -> Alcotest.fail e
  | Ok t2 ->
    Alcotest.(check (list int)) "clique preserved" [ 1; 2 ] (Rel_db.clique t2);
    Alcotest.(check bool) "p2c preserved" true (Rel_db.relationship t2 1 3 = Rel_db.A_provider_of_b);
    Alcotest.(check bool) "p2p preserved" true (Rel_db.relationship t2 1 2 = Rel_db.Peers);
    Alcotest.(check int) "same AS count" (List.length (Rel_db.ases t)) (List.length (Rel_db.ases t2))

let test_serial1_parse_caida_style () =
  let text = "# inferred clique: 174 3356\n# other comment\n174|3356|0\n3356|1000|-1\n" in
  match Rel_db.of_string text with
  | Error e -> Alcotest.fail e
  | Ok t ->
    Alcotest.(check (list int)) "clique from header" [ 174; 3356 ] (Rel_db.clique t);
    Alcotest.(check bool) "p2c" true (Rel_db.relationship t 3356 1000 = Rel_db.A_provider_of_b)

let test_serial1_errors () =
  Alcotest.(check bool) "garbage rel" true (Result.is_error (Rel_db.of_string "1|2|7\n"));
  Alcotest.(check bool) "garbage line" true (Result.is_error (Rel_db.of_string "hello\n"))

let test_save_load () =
  let t = sample () in
  let path = Filename.temp_file "asrel" ".txt" in
  Rel_db.save t path;
  (match Rel_db.load path with
   | Ok t2 ->
     Alcotest.(check bool) "loaded p2p" true (Rel_db.relationship t2 1 2 = Rel_db.Peers)
   | Error e -> Alcotest.fail e);
  Sys.remove path

let suite =
  [ Alcotest.test_case "relationship" `Quick test_relationship;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "duplicate edges" `Quick test_duplicate_edges_ignored;
    Alcotest.test_case "customer cone" `Quick test_customer_cone;
    Alcotest.test_case "cone memo invalidation" `Quick test_cone_memo_invalidation;
    Alcotest.test_case "clique" `Quick test_clique;
    Alcotest.test_case "infer clique" `Quick test_infer_clique;
    Alcotest.test_case "serial-1 roundtrip" `Quick test_serial1_roundtrip;
    Alcotest.test_case "serial-1 caida style" `Quick test_serial1_parse_caida_style;
    Alcotest.test_case "serial-1 errors" `Quick test_serial1_errors;
    Alcotest.test_case "save/load" `Quick test_save_load ]
