(* Tests for rz_aspath: regex parsing and matching, including the
   paper's future-work extensions (ASN ranges, ~ operators), plus the
   differential property against the paper's Cartesian-product
   formulation. *)
open Rz_aspath

let parse s =
  match Regex_parse.parse s with Ok ast -> ast | Error e -> Alcotest.fail (s ^ ": " ^ e)

let matches ?env s path = Regex_match.matches ?env (parse s) (Array.of_list path)

let check_match ?env s path expect =
  Alcotest.(check bool) (Printf.sprintf "%s vs %s" s (String.concat " " (List.map string_of_int path)))
    expect (matches ?env s path)

let test_parse_roundtrip () =
  List.iter
    (fun (input, expect) -> Alcotest.(check string) input expect (Regex_ast.to_string (parse input)))
    [ ("^AS13911 AS6327+$", "^ AS13911 AS6327+ $");
      ("AS1 | AS2", "(AS1 | AS2)");
      (".* AS1?", ".* AS1?");
      ("[AS1 AS2]", "[AS1 AS2]");
      ("[^AS1]", "[^AS1]");
      ("AS1{2,4}", "AS1{2,4}");
      ("AS1{3}", "AS1{3}");
      ("AS1{2,}", "AS1{2,}");
      ("AS1~+", "AS1~+");
      ("AS1~*", "AS1~*");
      ("[AS64496-AS64511]", "[AS64496-AS64511]");
      ("AS-FOO-BAR", "AS-FOO-BAR");
      ("PeerAS", "PeerAS") ]

let test_parse_errors () =
  let bad s = Alcotest.(check bool) s true (Result.is_error (Regex_parse.parse s)) in
  bad "(AS1";
  bad "[AS1";
  bad "AS1{";
  bad "AS1{a}";
  bad "AS1 )";
  bad "(AS1 AS2)~+" (* tilde needs a single term *)

let test_anchored () =
  check_match "^AS1$" [ 1 ] true;
  check_match "^AS1$" [ 1; 2 ] false;
  check_match "^AS1" [ 1; 2 ] true;
  check_match "AS2$" [ 1; 2 ] true;
  check_match "^AS2" [ 1; 2 ] false

let test_unanchored_search () =
  check_match "AS5" [ 1; 5; 9 ] true;
  check_match "AS5 AS9" [ 1; 5; 9 ] true;
  check_match "AS9 AS5" [ 1; 5; 9 ] false;
  check_match "AS7" [ 1; 5; 9 ] false

let test_quantifiers () =
  check_match "^AS1 AS2* AS3$" [ 1; 3 ] true;
  check_match "^AS1 AS2* AS3$" [ 1; 2; 2; 2; 3 ] true;
  check_match "^AS1 AS2+ AS3$" [ 1; 3 ] false;
  check_match "^AS1 AS2+ AS3$" [ 1; 2; 3 ] true;
  check_match "^AS1 AS2? AS3$" [ 1; 2; 3 ] true;
  check_match "^AS1 AS2? AS3$" [ 1; 2; 2; 3 ] false

let test_repetition_bounds () =
  check_match "^AS2{2,3}$" [ 2; 2 ] true;
  check_match "^AS2{2,3}$" [ 2; 2; 2 ] true;
  check_match "^AS2{2,3}$" [ 2 ] false;
  check_match "^AS2{2,3}$" [ 2; 2; 2; 2 ] false;
  check_match "^AS2{2}$" [ 2; 2 ] true;
  check_match "^AS2{2,}$" [ 2; 2; 2; 2; 2 ] true;
  check_match "^AS2{2,}$" [ 2 ] false

let test_wildcard_and_classes () =
  check_match "^AS1 . AS3$" [ 1; 99; 3 ] true;
  check_match "^AS1 . AS3$" [ 1; 3 ] false;
  check_match "^[AS2 AS4]+$" [ 2; 4; 2 ] true;
  check_match "^[AS2 AS4]+$" [ 2; 5 ] false;
  check_match "^[^AS2 AS4]$" [ 7 ] true;
  check_match "^[^AS2 AS4]$" [ 2 ] false

let test_asn_ranges () =
  check_match "^[AS64496-AS64511]+$" [ 64500; 64511 ] true;
  check_match "^[AS64496-AS64511]+$" [ 64512 ] false;
  check_match "^AS64496-AS64511$" [ 64496 ] true

let test_alternation () =
  check_match "^(AS1 | AS2) AS3$" [ 2; 3 ] true;
  check_match "^(AS1 | AS2) AS3$" [ 1; 3 ] true;
  check_match "^(AS1 | AS2) AS3$" [ 4; 3 ] false

let test_tilde_same_pattern () =
  (* ~+ repeats the SAME ASN; plain + would also accept mixtures *)
  check_match "^[AS1 AS2]~+$" [ 1; 1; 1 ] true;
  check_match "^[AS1 AS2]~+$" [ 2; 2 ] true;
  check_match "^[AS1 AS2]~+$" [ 1; 2 ] false;
  check_match "^[AS1 AS2]+$" [ 1; 2 ] true;
  check_match "^AS9 [AS1 AS2]~*$" [ 9 ] true;
  check_match "^AS9 [AS1 AS2]~*$" [ 9; 2; 2 ] true;
  check_match "^AS9 [AS1 AS2]~*$" [ 9; 2; 1 ] false

let test_peeras_binding () =
  let env = { Regex_match.default_env with peer_as = Some 5 } in
  check_match ~env "^PeerAS" [ 5; 9 ] true;
  check_match ~env "^PeerAS" [ 6; 9 ] false;
  (* unbound PeerAS matches nothing *)
  check_match "^PeerAS" [ 5; 9 ] false

let test_as_set_resolution () =
  let env =
    { Regex_match.asn_in_set = (fun name asn -> name = "AS-FOO" && (asn = 10 || asn = 11));
      peer_as = None }
  in
  check_match ~env "^AS-FOO+$" [ 10; 11 ] true;
  check_match ~env "^AS-FOO+$" [ 10; 12 ] false;
  check_match ~env "^AS-OTHER$" [ 10 ] false

let test_empty_path () =
  check_match "^$" [] true;
  check_match "^AS1$" [] false;
  check_match ".*" [] true

let test_paper_example () =
  (* <^AS13911 AS6327+$> from the AS14595 compound rule *)
  check_match "^AS13911 AS6327+$" [ 13911; 6327 ] true;
  check_match "^AS13911 AS6327+$" [ 13911; 6327; 6327 ] true;
  check_match "^AS13911 AS6327+$" [ 13911; 1; 6327 ] false;
  check_match "^AS13911 AS6327+$" [ 6327 ] false

let test_future_work_detection () =
  Alcotest.(check bool) "range flagged" true
    (Regex_ast.uses_future_work_features (parse "[AS1-AS5]"));
  Alcotest.(check bool) "tilde flagged" true
    (Regex_ast.uses_future_work_features (parse "AS1~+"));
  Alcotest.(check bool) "plain not flagged" false
    (Regex_ast.uses_future_work_features (parse "^AS1 .* AS2$"))

(* Differential property: the backtracking matcher agrees with the
   paper's explicit Cartesian-product formulation. *)
let small_regex_gen =
  let open QCheck.Gen in
  let term = oneofl [ "AS1"; "AS2"; "AS3"; "."; "[AS1 AS2]"; "[^AS1]" ] in
  let postfix = oneofl [ ""; "*"; "+"; "?" ] in
  let piece = map2 (fun t p -> t ^ p) term postfix in
  let body = map (String.concat " ") (list_size (int_range 1 4) piece) in
  map2
    (fun anchored body -> if anchored then "^" ^ body ^ "$" else body)
    bool body

let path_gen = QCheck.Gen.(list_size (int_range 0 4) (int_range 1 4))

let differential_product =
  QCheck.Test.make ~name:"backtracking matcher = Cartesian-product matcher" ~count:500
    (QCheck.make (QCheck.Gen.pair small_regex_gen path_gen))
    (fun (regex_s, path) ->
      match Regex_parse.parse regex_s with
      | Error _ -> QCheck.assume_fail ()
      | Ok ast ->
        let path = Array.of_list path in
        let fast = Regex_match.matches ast path in
        let slow = Regex_match.matches_product ast path in
        fast = slow)

(* NFA evaluator: agrees with the backtracking matcher on every case. *)
let nfa_matches s path =
  Regex_nfa.matches (Regex_nfa.compile (parse s)) (Array.of_list path)

let test_nfa_basics () =
  List.iter
    (fun (regex, path, expect) ->
      Alcotest.(check bool) regex expect (nfa_matches regex path))
    [ ("^AS13911 AS6327+$", [ 13911; 6327; 6327 ], true);
      ("^AS13911 AS6327+$", [ 13911; 1; 6327 ], false);
      ("AS5", [ 1; 5; 9 ], true);
      ("^AS5", [ 1; 5; 9 ], false);
      ("^AS2{2,3}$", [ 2; 2 ], true);
      ("^AS2{2,3}$", [ 2 ], false);
      ("^[^AS3 AS4]+$", [ 1; 3 ], false);
      ("^[AS1 AS2]~+$", [ 1; 2 ], false);
      ("^[AS1 AS2]~+$", [ 2; 2 ], true);
      ("^AS9 [AS1 AS2]~*$", [ 9 ], true);
      ("^$", [], true) ]

let test_nfa_state_count () =
  let t = Regex_nfa.compile (parse "^AS1 (AS2 | AS3)* AS4$") in
  Alcotest.(check bool) "some states" true (Regex_nfa.state_count t > 5)

let nfa_differential =
  QCheck.Test.make ~name:"NFA evaluator = backtracking matcher" ~count:500
    (QCheck.make (QCheck.Gen.pair small_regex_gen path_gen))
    (fun (regex_s, path) ->
      match Regex_parse.parse regex_s with
      | Error _ -> QCheck.assume_fail ()
      | Ok ast ->
        let path = Array.of_list path in
        Regex_match.matches ast path = Regex_nfa.matches (Regex_nfa.compile ast) path)

let nfa_differential_tilde =
  QCheck.Test.make ~name:"NFA handles ~ operators like the matcher" ~count:300
    (QCheck.make
       QCheck.Gen.(pair (oneofl [ "^AS1~+$"; "AS1~*"; "^[AS1 AS2]~+ AS3$"; "^AS3 [AS1 AS2]~*$" ])
                     (list_size (int_range 0 5) (int_range 1 3))))
    (fun (regex_s, path) ->
      match Regex_parse.parse regex_s with
      | Error _ -> QCheck.assume_fail ()
      | Ok ast ->
        let path = Array.of_list path in
        Regex_match.matches ast path = Regex_nfa.matches (Regex_nfa.compile ast) path)

let suite =
  [ Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "anchors" `Quick test_anchored;
    Alcotest.test_case "unanchored search" `Quick test_unanchored_search;
    Alcotest.test_case "quantifiers" `Quick test_quantifiers;
    Alcotest.test_case "repetition bounds" `Quick test_repetition_bounds;
    Alcotest.test_case "wildcard / classes" `Quick test_wildcard_and_classes;
    Alcotest.test_case "asn ranges" `Quick test_asn_ranges;
    Alcotest.test_case "alternation" `Quick test_alternation;
    Alcotest.test_case "tilde same-pattern ops" `Quick test_tilde_same_pattern;
    Alcotest.test_case "PeerAS binding" `Quick test_peeras_binding;
    Alcotest.test_case "as-set resolution" `Quick test_as_set_resolution;
    Alcotest.test_case "empty path" `Quick test_empty_path;
    Alcotest.test_case "paper example regex" `Quick test_paper_example;
    Alcotest.test_case "future-work detection" `Quick test_future_work_detection;
    QCheck_alcotest.to_alcotest differential_product;
    Alcotest.test_case "nfa basics" `Quick test_nfa_basics;
    Alcotest.test_case "nfa state count" `Quick test_nfa_state_count;
    QCheck_alcotest.to_alcotest nfa_differential;
    QCheck_alcotest.to_alcotest nfa_differential_tilde ]
