(* Tests for rz_routegen: Gao-Rexford propagation invariants — valley-free
   paths, reachability, path consistency with the topology. *)
module Gen = Rz_topology.Gen
module Rel_db = Rz_asrel.Rel_db
module Propagate = Rz_routegen.Propagate

let params = { Gen.default_params with n_tier1 = 3; n_mid = 20; n_stub = 60 }
let topo = lazy (Gen.generate params)

(* Valley-free: a path, read from the source towards the destination, may
   climb customer->provider links and cross at most one peer link, after
   which it may only descend provider->customer. *)
let valley_free rels path =
  (* classify each step *)
  let rec steps = function
    | a :: (b :: _ as rest) ->
      let step =
        match Rel_db.relationship rels a b with
        | Rel_db.B_provider_of_a -> `Up
        | Rel_db.A_provider_of_b -> `Down
        | Rel_db.Peers -> `Peer
        | Rel_db.Unknown -> `Bad
      in
      step :: steps rest
    | _ -> []
  in
  let rec check phase = function
    | [] -> true
    | `Bad :: _ -> false
    | `Up :: rest -> phase = `Climbing && check `Climbing rest
    | `Peer :: rest -> phase = `Climbing && check `Descending rest
    | `Down :: rest -> check `Descending rest
  in
  check `Climbing (steps path)

let test_dest_has_own_route () =
  let t = Lazy.force topo in
  let dest = t.ases.(10) in
  let table = Propagate.best_routes t ~dest in
  match Hashtbl.find_opt table dest with
  | Some b ->
    Alcotest.(check int) "zero length" 0 b.Propagate.length;
    Alcotest.(check (list int)) "self path" [ dest ] b.path;
    Alcotest.(check bool) "own class" true (b.cls = Propagate.Own)
  | None -> Alcotest.fail "destination missing its own route"

let test_full_reachability () =
  let t = Lazy.force topo in
  let dest = t.ases.(0) in
  let table = Propagate.best_routes t ~dest in
  Alcotest.(check int) "every AS reaches a tier1 destination" (Gen.n_ases t)
    (Hashtbl.length table)

let test_paths_start_and_end_correctly () =
  let t = Lazy.force topo in
  let dest = t.ases.(5) in
  let table = Propagate.best_routes t ~dest in
  Hashtbl.iter
    (fun asn (b : Propagate.best) ->
      Alcotest.(check int) "starts at self" asn (List.hd b.path);
      Alcotest.(check int) "ends at dest" dest (List.nth b.path (List.length b.path - 1));
      Alcotest.(check int) "length consistent" (List.length b.path - 1) b.length)
    table

let test_paths_follow_real_links () =
  let t = Lazy.force topo in
  let dest = t.ases.(7) in
  let table = Propagate.best_routes t ~dest in
  Hashtbl.iter
    (fun _ (b : Propagate.best) ->
      let rec check = function
        | a :: (b :: _ as rest) ->
          Alcotest.(check bool)
            (Printf.sprintf "link %d-%d exists" a b)
            true
            (Rel_db.relationship t.rels a b <> Rel_db.Unknown);
          check rest
        | _ -> ()
      in
      check b.path)
    table

let test_paths_valley_free () =
  let t = Lazy.force topo in
  (* check several destinations *)
  List.iter
    (fun i ->
      let dest = t.ases.(i) in
      let table = Propagate.best_routes t ~dest in
      Hashtbl.iter
        (fun asn (b : Propagate.best) ->
          Alcotest.(check bool)
            (Printf.sprintf "valley-free %d -> %d" asn dest)
            true
            (valley_free t.rels b.path))
        table)
    [ 0; 4; 25; 50; 80 ]

let test_no_loops_in_paths () =
  let t = Lazy.force topo in
  let dest = t.ases.(30) in
  let table = Propagate.best_routes t ~dest in
  Hashtbl.iter
    (fun _ (b : Propagate.best) ->
      let sorted = List.sort_uniq compare b.path in
      Alcotest.(check int) "no repeated AS" (List.length b.path) (List.length sorted))
    table

let test_customer_route_preferred () =
  (* An AS with a customer route to the destination must use it even if a
     shorter peer/provider path exists; verify class consistency: if the
     first step goes down, class must be From_customer. *)
  let t = Lazy.force topo in
  let dest = t.ases.(60) in
  let table = Propagate.best_routes t ~dest in
  Hashtbl.iter
    (fun asn (b : Propagate.best) ->
      if asn <> dest then begin
        let next = List.nth b.path 1 in
        match Rel_db.relationship t.rels asn next with
        | Rel_db.A_provider_of_b ->
          Alcotest.(check bool) "down step = customer route" true
            (b.cls = Propagate.From_customer)
        | Rel_db.Peers ->
          Alcotest.(check bool) "peer step = peer route" true (b.cls = Propagate.From_peer)
        | Rel_db.B_provider_of_a ->
          Alcotest.(check bool) "up step = provider route" true
            (b.cls = Propagate.From_provider)
        | Rel_db.Unknown -> Alcotest.fail "path uses non-existent link"
      end)
    table

let test_collector_dump () =
  let t = Lazy.force topo in
  let peers = Propagate.default_collector_peers t ~n:3 in
  Alcotest.(check bool) "peers include tier1s" true (List.length peers >= 3);
  let dump = Propagate.collector_dump t ~collector:"test-rrc" ~peers in
  Alcotest.(check bool) "has routes" true (List.length dump.routes > 0);
  (* every route's path starts at a collector peer and ends at the AS
     originating the prefix *)
  List.iter
    (fun (r : Rz_bgp.Route.t) ->
      let path = Rz_bgp.Route.dedup_path r in
      Alcotest.(check bool) "starts at a peer" true (List.mem (List.hd path) peers);
      let origin = List.nth path (List.length path - 1) in
      Alcotest.(check bool) "origin announces prefix" true
        (List.exists (Rz_net.Prefix.equal r.prefix) (Gen.prefixes_of t origin)))
    dump.routes

let test_collector_dump_deterministic () =
  let t = Lazy.force topo in
  let peers = Propagate.default_collector_peers t ~n:2 in
  let d1 = Propagate.collector_dump t ~collector:"x" ~peers in
  let d2 = Propagate.collector_dump t ~collector:"x" ~peers in
  Alcotest.(check string) "same dump" (Rz_bgp.Table_dump.to_string d1)
    (Rz_bgp.Table_dump.to_string d2)

let suite =
  [ Alcotest.test_case "dest own route" `Quick test_dest_has_own_route;
    Alcotest.test_case "full reachability" `Quick test_full_reachability;
    Alcotest.test_case "path endpoints" `Quick test_paths_start_and_end_correctly;
    Alcotest.test_case "paths follow real links" `Quick test_paths_follow_real_links;
    Alcotest.test_case "paths valley-free" `Quick test_paths_valley_free;
    Alcotest.test_case "no loops" `Quick test_no_loops_in_paths;
    Alcotest.test_case "class consistency" `Quick test_customer_route_preferred;
    Alcotest.test_case "collector dump" `Quick test_collector_dump;
    Alcotest.test_case "collector dump deterministic" `Quick test_collector_dump_deterministic ]
