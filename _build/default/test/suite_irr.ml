(* Tests for rz_irr: priority merge, as-set flattening (recursion, loops,
   depth), members-by-reference, route-set flattening, route queries. *)
module Db = Rz_irr.Db

let db_of text = Db.of_dumps [ ("TEST", text) ]
let p = Rz_net.Prefix.of_string_exn

let asn_set_elems s = Db.Asn_set.elements s

let test_flatten_direct () =
  let db = db_of "as-set: AS-X\nmembers: AS1, AS2\n" in
  Alcotest.(check (list int)) "members" [ 1; 2 ] (asn_set_elems (Db.flatten_as_set db "AS-X"))

let test_flatten_nested () =
  let db = db_of "as-set: AS-TOP\nmembers: AS1, AS-MID\n\nas-set: AS-MID\nmembers: AS2, AS-LEAF\n\nas-set: AS-LEAF\nmembers: AS3\n" in
  Alcotest.(check (list int)) "transitive" [ 1; 2; 3 ]
    (asn_set_elems (Db.flatten_as_set db "AS-TOP"));
  Alcotest.(check int) "depth" 3 (Db.as_set_depth db "AS-TOP");
  Alcotest.(check bool) "no loop" false (Db.as_set_has_loop db "AS-TOP")

let test_flatten_loop () =
  let db = db_of "as-set: AS-A\nmembers: AS1, AS-B\n\nas-set: AS-B\nmembers: AS2, AS-A\n" in
  Alcotest.(check (list int)) "loop members converge" [ 1; 2 ]
    (asn_set_elems (Db.flatten_as_set db "AS-A"));
  Alcotest.(check bool) "loop detected A" true (Db.as_set_has_loop db "AS-A");
  Alcotest.(check bool) "loop detected B" true (Db.as_set_has_loop db "AS-B")

let test_flatten_loop_reachable () =
  let db =
    db_of "as-set: AS-OUTER\nmembers: AS-A\n\nas-set: AS-A\nmembers: AS-B\n\nas-set: AS-B\nmembers: AS-A\n"
  in
  Alcotest.(check bool) "reaches loop" true (Db.as_set_has_loop db "AS-OUTER")

let test_flatten_unknown () =
  let db = db_of "as-set: AS-X\nmembers: AS1, AS-MISSING\n" in
  Alcotest.(check bool) "unknown set absent" false (Db.as_set_exists db "AS-MISSING");
  Alcotest.(check (list int)) "missing nested ignored" [ 1 ]
    (asn_set_elems (Db.flatten_as_set db "AS-X"));
  Alcotest.(check (list int)) "flatten unknown = empty" []
    (asn_set_elems (Db.flatten_as_set db "AS-NOPE"));
  Alcotest.(check int) "depth of unknown" 0 (Db.as_set_depth db "AS-NOPE")

let test_flatten_case_insensitive () =
  let db = db_of "as-set: AS-X\nmembers: as1, AS-y\n\nas-set: as-Y\nmembers: AS2\n" in
  Alcotest.(check (list int)) "case folded" [ 1; 2 ]
    (asn_set_elems (Db.flatten_as_set db "as-x"))

let test_mbrs_by_ref () =
  let text =
    "as-set: AS-COOP\nmbrs-by-ref: MNT-A\n\n\
     aut-num: AS10\nmember-of: AS-COOP\nmnt-by: MNT-A\n\n\
     aut-num: AS11\nmember-of: AS-COOP\nmnt-by: MNT-OTHER\n"
  in
  let db = db_of text in
  (* AS10's maintainer is authorized; AS11's is not *)
  Alcotest.(check (list int)) "authorized only" [ 10 ]
    (asn_set_elems (Db.flatten_as_set db "AS-COOP"))

let test_mbrs_by_ref_any () =
  let text =
    "as-set: AS-OPEN\nmbrs-by-ref: ANY\n\naut-num: AS10\nmember-of: AS-OPEN\nmnt-by: MNT-X\n"
  in
  let db = db_of text in
  Alcotest.(check (list int)) "ANY admits all" [ 10 ]
    (asn_set_elems (Db.flatten_as_set db "AS-OPEN"))

let test_asn_in_as_set () =
  let db = db_of "as-set: AS-X\nmembers: AS1, AS-Y\n\nas-set: AS-Y\nmembers: AS2\n" in
  Alcotest.(check bool) "direct" true (Db.asn_in_as_set db "AS-X" 1);
  Alcotest.(check bool) "nested" true (Db.asn_in_as_set db "AS-X" 2);
  Alcotest.(check bool) "absent" false (Db.asn_in_as_set db "AS-X" 3)

let test_route_queries () =
  let text =
    "route: 10.0.0.0/8\norigin: AS1\n\nroute: 10.1.0.0/16\norigin: AS2\n\nroute6: 2001:db8::/32\norigin: AS1\n"
  in
  let db = db_of text in
  Alcotest.(check bool) "AS1 has routes" true (Db.origin_has_routes db 1);
  Alcotest.(check bool) "AS3 has none" false (Db.origin_has_routes db 3);
  Alcotest.(check int) "AS1 prefixes" 2 (List.length (Db.origin_prefixes db 1));
  Alcotest.(check (list int)) "exact origins" [ 2 ] (Db.exact_origins db (p "10.1.0.0/16"));
  let covering = Db.covering_routes db (p "10.1.2.0/24") in
  Alcotest.(check int) "two covering" 2 (List.length covering);
  Alcotest.(check (list int)) "least specific first" [ 1; 2 ] (List.map snd covering)

let test_route_set_flatten () =
  let text =
    "route-set: RS-TOP\nmembers: 192.0.2.0/24, RS-SUB^+, AS5\n\n\
     route-set: RS-SUB\nmembers: 198.51.100.0/24\n\n\
     route: 203.0.113.0/24\norigin: AS5\n"
  in
  let db = db_of text in
  let members = Db.flatten_route_set db "RS-TOP" in
  Alcotest.(check int) "three flattened" 3 (List.length members);
  (* the ^+ on RS-SUB applies to its members *)
  Alcotest.(check bool) "nested carries op" true
    (List.exists
       (fun (pfx, op) ->
         Rz_net.Prefix.equal pfx (p "198.51.100.0/24") && op = Rz_net.Range_op.Plus)
       members);
  Alcotest.(check bool) "asn member resolved" true
    (List.exists (fun (pfx, _) -> Rz_net.Prefix.equal pfx (p "203.0.113.0/24")) members)

let test_route_set_loop () =
  let db = db_of "route-set: RS-A\nmembers: RS-B\n\nroute-set: RS-B\nmembers: RS-A, 10.0.0.0/8\n" in
  let members = Db.flatten_route_set db "RS-A" in
  Alcotest.(check int) "loop converges" 1 (List.length members)

let test_route_set_with_as_set_member () =
  let text =
    "route-set: RS-X\nmembers: AS-GROUP\n\nas-set: AS-GROUP\nmembers: AS7\n\nroute: 10.7.0.0/16\norigin: AS7\n"
  in
  let db = db_of text in
  Alcotest.(check bool) "as-set member expands to prefixes" true
    (List.exists
       (fun (pfx, _) -> Rz_net.Prefix.equal pfx (p "10.7.0.0/16"))
       (Db.flatten_route_set db "RS-X"))

let test_route_set_member_of () =
  let text =
    "route-set: RS-COOP\nmbrs-by-ref: MNT-A\n\n\
     route: 192.0.2.0/24\norigin: AS1\nmember-of: RS-COOP\nmnt-by: MNT-A\n"
  in
  let db = db_of text in
  Alcotest.(check bool) "indirect route member" true
    (List.exists
       (fun (pfx, _) -> Rz_net.Prefix.equal pfx (p "192.0.2.0/24"))
       (Db.flatten_route_set db "RS-COOP"))

let test_of_dumps_priority () =
  let db =
    Db.of_dumps
      [ ("HIGH", "aut-num: AS1\nas-name: FIRST\n"); ("LOW", "aut-num: AS1\nas-name: SECOND\n") ]
  in
  match Db.find_aut_num db 1 with
  | Some an -> Alcotest.(check string) "priority" "FIRST" an.as_name
  | None -> Alcotest.fail "missing"

let test_priority_order_matches_synthirr () =
  Alcotest.(check (list string)) "paper's 13 IRRs" Rz_synthirr.Generate.irr_names
    Db.priority_order

(* ---------------- filter materialization (peval) ---------------- *)

let peval_fixture =
  "as-set: AS-GROUP\nmembers: AS1, AS2\n\n\
   route-set: RS-STATIC\nmembers: 203.0.113.0/24^+\n\n\
   filter-set: FLTR-NETS\nfilter: AS1 OR RS-STATIC\n\n\
   route: 192.0.2.0/24\norigin: AS1\n\n\
   route: 198.51.100.0/24\norigin: AS2\n\n\
   route: 198.51.101.0/24\norigin: AS2\n"

let peval text =
  let db = db_of peval_fixture in
  match Rz_irr.Filter_eval.eval_string db text with
  | Ok result -> result
  | Error e -> Alcotest.fail e

let term_strings (r : Rz_irr.Filter_eval.result) =
  List.map
    (fun (pfx, op) -> Rz_net.Prefix.to_string pfx ^ Rz_net.Range_op.to_string op)
    r.prefixes

let test_peval_asn () =
  Alcotest.(check (list string)) "origin prefixes" [ "192.0.2.0/24" ]
    (term_strings (peval "AS1"))

let test_peval_as_set_union () =
  Alcotest.(check (list string)) "flattened set"
    [ "192.0.2.0/24"; "198.51.100.0/24"; "198.51.101.0/24" ]
    (term_strings (peval "AS-GROUP"))

let test_peval_difference () =
  Alcotest.(check (list string)) "AND NOT"
    [ "198.51.100.0/24"; "198.51.101.0/24" ]
    (term_strings (peval "AS-GROUP AND NOT AS1"))

let test_peval_intersection () =
  Alcotest.(check (list string)) "AND" [ "192.0.2.0/24" ]
    (term_strings (peval "AS-GROUP AND AS1"))

let test_peval_route_set_and_filter_set () =
  Alcotest.(check (list string)) "route-set op kept" [ "203.0.113.0/24^+" ]
    (term_strings (peval "RS-STATIC"));
  Alcotest.(check (list string)) "filter-set recursion"
    [ "192.0.2.0/24"; "203.0.113.0/24^+" ]
    (term_strings (peval "FLTR-NETS"))

let test_peval_unresolved () =
  let r = peval "AS1 OR <^AS1$>" in
  Alcotest.(check (list string)) "set part kept" [ "192.0.2.0/24" ] (term_strings r);
  Alcotest.(check int) "regex reported" 1 (List.length r.unresolved);
  let r2 = peval "ANY" in
  Alcotest.(check int) "ANY unresolved" 1 (List.length r2.unresolved);
  Alcotest.(check (list string)) "nothing materialized" [] (term_strings r2)

let test_peval_prefix_list_aggregates () =
  let r = peval "AS-GROUP" in
  Alcotest.(check (list string)) "aggregated bare prefixes"
    [ "192.0.2.0/24"; "198.51.100.0/23" ]
    (List.map Rz_net.Prefix.to_string (Rz_irr.Filter_eval.to_prefix_list r))

let flatten_memo_consistent =
  QCheck.Test.make ~name:"flatten is deterministic across calls" ~count:50
    (QCheck.make (QCheck.Gen.int_range 1 10000))
    (fun seed ->
      let rng = Rz_util.Splitmix.create seed in
      (* random small set graph *)
      let n = 6 in
      let buf = Buffer.create 256 in
      for i = 0 to n - 1 do
        Buffer.add_string buf (Printf.sprintf "as-set: AS-S%d\nmembers: AS%d" i (100 + i));
        for j = 0 to n - 1 do
          if i <> j && Rz_util.Splitmix.chance rng 0.3 then
            Buffer.add_string buf (Printf.sprintf ", AS-S%d" j)
        done;
        Buffer.add_string buf "\n\n"
      done;
      let db = db_of (Buffer.contents buf) in
      let first = asn_set_elems (Db.flatten_as_set db "AS-S0") in
      let second = asn_set_elems (Db.flatten_as_set db "AS-S0") in
      first = second && List.mem 100 first)

let suite =
  [ Alcotest.test_case "flatten direct" `Quick test_flatten_direct;
    Alcotest.test_case "flatten nested" `Quick test_flatten_nested;
    Alcotest.test_case "flatten loop" `Quick test_flatten_loop;
    Alcotest.test_case "loop reachable" `Quick test_flatten_loop_reachable;
    Alcotest.test_case "flatten unknown" `Quick test_flatten_unknown;
    Alcotest.test_case "flatten case-insensitive" `Quick test_flatten_case_insensitive;
    Alcotest.test_case "mbrs-by-ref authorized" `Quick test_mbrs_by_ref;
    Alcotest.test_case "mbrs-by-ref ANY" `Quick test_mbrs_by_ref_any;
    Alcotest.test_case "asn_in_as_set" `Quick test_asn_in_as_set;
    Alcotest.test_case "route queries" `Quick test_route_queries;
    Alcotest.test_case "route-set flatten" `Quick test_route_set_flatten;
    Alcotest.test_case "route-set loop" `Quick test_route_set_loop;
    Alcotest.test_case "route-set with as-set member" `Quick test_route_set_with_as_set_member;
    Alcotest.test_case "route-set member-of" `Quick test_route_set_member_of;
    Alcotest.test_case "of_dumps priority" `Quick test_of_dumps_priority;
    Alcotest.test_case "priority order list" `Quick test_priority_order_matches_synthirr;
    Alcotest.test_case "peval asn" `Quick test_peval_asn;
    Alcotest.test_case "peval as-set union" `Quick test_peval_as_set_union;
    Alcotest.test_case "peval difference" `Quick test_peval_difference;
    Alcotest.test_case "peval intersection" `Quick test_peval_intersection;
    Alcotest.test_case "peval route/filter sets" `Quick test_peval_route_set_and_filter_set;
    Alcotest.test_case "peval unresolved" `Quick test_peval_unresolved;
    Alcotest.test_case "peval aggregation" `Quick test_peval_prefix_list_aggregates;
    QCheck_alcotest.to_alcotest flatten_memo_consistent ]
