(* Tests for rz_stats: BGPq4 compatibility classifier and the Section-4
   characterization computations on crafted inputs. *)
module Usage = Rz_stats.Usage
module Bgpq4 = Rz_stats.Bgpq4_compat
module Ast = Rz_policy.Ast
module Db = Rz_irr.Db

let rule text =
  match Rz_policy.Parser.parse_rule ~direction:`Import ~multiprotocol:false text with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_bgpq4_compatible () =
  List.iter
    (fun text ->
      Alcotest.(check bool) text true (Bgpq4.rule_compatible (rule text)))
    [ "from AS1 accept ANY";
      "from AS1 accept AS2";
      "from AS1 accept AS-FOO";
      "from AS1 accept RS-BAR^+";
      "from AS1 accept { 10.0.0.0/8^16-24 }";
      "from AS1 accept PeerAS" ]

let test_bgpq4_incompatible () =
  List.iter
    (fun text ->
      Alcotest.(check bool) text false (Bgpq4.rule_compatible (rule text)))
    [ "from AS1 accept <^AS1$>";
      "from AS1 accept community(65535:666)";
      "from AS1 accept ANY AND NOT { 10.0.0.0/8 }";
      "from AS1 accept NOT AS2";
      "from AS1 accept FLTR-X";
      "from AS1 accept fltr-martian";
      "from AS1 accept ANY REFINE from AS1 accept AS2";
      "from AS1 accept ANY EXCEPT from AS1 accept AS2" ]

let fixture_dumps =
  [ ( "RIPE",
      "aut-num: AS1\n\
       import: from AS2 accept AS-CONE\n\
       import: from AS3 accept <^AS3+$>\n\
       export: to AS2 announce RS-NETS\n\n\
       aut-num: AS2\n\n\
       as-set: AS-CONE\nmembers: AS1, AS-SUB\n\n\
       as-set: AS-SUB\nmembers: AS9\n\n\
       as-set: AS-UNUSED\n\n\
       route-set: RS-NETS\nmembers: 192.0.2.0/24\n\n\
       route: 192.0.2.0/24\norigin: AS1\nmnt-by: MNT-A\n\n\
       route: 198.51.100.0/24\norigin: AS1\nmnt-by: MNT-A\n" );
    ( "RADB",
      "route: 192.0.2.0/24\norigin: AS1\nmnt-by: MNT-B\n\n\
       route: 192.0.2.0/24\norigin: AS7\nmnt-by: MNT-C\n" ) ]

let usage = lazy (Usage.compute ~dumps:fixture_dumps (Db.of_dumps fixture_dumps))

let test_table1 () =
  let u = Lazy.force usage in
  Alcotest.(check int) "two rows" 2 (List.length u.table1);
  let ripe = List.find (fun (r : Usage.table1_row) -> r.irr = "RIPE") u.table1 in
  Alcotest.(check int) "ripe aut-nums" 2 ripe.n_aut_num;
  Alcotest.(check int) "ripe routes" 2 ripe.n_route;
  Alcotest.(check int) "ripe imports" 2 ripe.n_import;
  Alcotest.(check int) "ripe exports" 1 ripe.n_export;
  let radb = List.find (fun (r : Usage.table1_row) -> r.irr = "RADB") u.table1 in
  Alcotest.(check int) "radb routes (pre-dedup)" 2 radb.n_route

let test_rules_per_aut_num () =
  let u = Lazy.force usage in
  Alcotest.(check (list (pair int int))) "rule counts" [ (1, 3); (2, 0) ] u.rules_per_aut_num;
  (* AS1 has one BGPq4-incompatible rule (the regex) *)
  Alcotest.(check (list (pair int int))) "bgpq4 counts" [ (1, 2); (2, 0) ]
    u.bgpq4_rules_per_aut_num

let test_table2 () =
  let u = Lazy.force usage in
  let t2 = u.table2 in
  Alcotest.(check int) "defined aut-num" 2 t2.defined_aut_num;
  Alcotest.(check int) "defined as-set" 3 t2.defined_as_set;
  Alcotest.(check int) "defined route-set" 1 t2.defined_route_set;
  (* referenced: AS2 and AS3 in peerings; AS3 (regex) in filters *)
  Alcotest.(check int) "peering aut-nums" 2 t2.ref_peering_aut_num;
  Alcotest.(check int) "filter aut-nums" 1 t2.ref_filter_aut_num;
  Alcotest.(check int) "overall aut-nums" 2 t2.ref_overall_aut_num;
  Alcotest.(check int) "filter as-sets" 1 t2.ref_filter_as_set;
  Alcotest.(check int) "filter route-sets" 1 t2.ref_filter_route_set

let test_route_stats () =
  let u = Lazy.force usage in
  let rs = u.route_stats in
  Alcotest.(check int) "raw objects" 4 rs.n_objects;
  Alcotest.(check int) "unique pairs" 3 rs.n_prefix_origin;
  Alcotest.(check int) "unique prefixes" 2 rs.n_prefixes;
  Alcotest.(check int) "multi-object prefixes" 1 rs.multi_object_prefixes;
  Alcotest.(check int) "multi-origin prefixes" 1 rs.multi_origin_prefixes;
  Alcotest.(check int) "multi-maintainer prefixes" 1 rs.multi_maintainer_prefixes

let test_as_set_stats () =
  let u = Lazy.force usage in
  let s = u.as_set_stats in
  Alcotest.(check int) "n sets" 3 s.n_sets;
  Alcotest.(check int) "empty" 1 s.empty;
  Alcotest.(check int) "singleton" 1 s.singleton (* AS-SUB *);
  Alcotest.(check int) "recursive" 1 s.recursive (* AS-CONE *);
  Alcotest.(check int) "loops" 0 s.with_loop

let test_filter_kinds_and_peerings () =
  let u = Lazy.force usage in
  Alcotest.(check (float 1e-9)) "all peerings simple" 1.0 u.peering_simple_fraction;
  Alcotest.(check int) "as-set filters" 1 (List.assoc "as-set" u.filter_kind_histogram);
  Alcotest.(check int) "regex filters" 1 (List.assoc "as-path-regex" u.filter_kind_histogram);
  Alcotest.(check int) "route-set filters" 1 (List.assoc "route-set" u.filter_kind_histogram)

let test_error_stats () =
  let dumps = [ ("X", "as-set: BAD\nmembers: AS1\n\naut-num: AS5\nimport: from accept ANY\n") ] in
  let u = Usage.compute ~dumps (Db.of_dumps dumps) in
  Alcotest.(check int) "invalid as-set name" 1 u.error_stats.invalid_as_set_names;
  Alcotest.(check bool) "syntax errors" true (u.error_stats.syntax_errors >= 1)

let test_ccdf_rules () =
  let ccdf = Usage.ccdf_rules [ (1, 0); (2, 0); (3, 5); (4, 10) ] in
  Alcotest.(check (float 1e-9)) "P(>=0)" 1.0 (List.assoc 0 ccdf);
  Alcotest.(check (float 1e-9)) "P(>=5)" 0.5 (List.assoc 5 ccdf);
  Alcotest.(check (float 1e-9)) "P(>=10)" 0.25 (List.assoc 10 ccdf)

let test_loop_and_depth_stats () =
  let dumps =
    [ ("X",
       "as-set: AS-A\nmembers: AS-B\n\nas-set: AS-B\nmembers: AS-A\n\n\
        as-set: AS-D1\nmembers: AS-D2\n\nas-set: AS-D2\nmembers: AS-D3\n\n\
        as-set: AS-D3\nmembers: AS-D4\n\nas-set: AS-D4\nmembers: AS-D5\n\n\
        as-set: AS-D5\nmembers: AS1\n") ]
  in
  let u = Usage.compute ~dumps (Db.of_dumps dumps) in
  Alcotest.(check int) "loops counted" 2 u.as_set_stats.with_loop;
  Alcotest.(check int) "depth >= 5" 1 u.as_set_stats.depth_5_plus

let test_coverage () =
  let dumps =
    [ ("HIGH", "aut-num: AS1\n\nroute: 192.0.2.0/24\norigin: AS1\n");
      ("LOW",
       "aut-num: AS1\n\nroute: 192.0.2.0/24\norigin: AS1\n\nroute: 198.51.100.0/24\norigin: AS2\n") ]
  in
  let c = Rz_stats.Coverage.compute ~dumps (Db.of_dumps dumps) in
  (* dedup drops LOW's duplicates: 3 raw routes, 2 owned *)
  Alcotest.(check int) "shadowed" 1 c.shadowed_routes;
  let find irr = List.find_opt (fun (r : Rz_stats.Coverage.row) -> r.irr = irr) c.rows in
  (match find "HIGH" with
   | Some r ->
     Alcotest.(check int) "HIGH owns the aut-num" 1 r.aut_nums;
     Alcotest.(check int) "HIGH owns its route" 1 r.routes
   | None -> Alcotest.fail "HIGH row missing... (not in priority order)");
  ignore (find "LOW")

let suite =
  [ Alcotest.test_case "bgpq4 compatible" `Quick test_bgpq4_compatible;
    Alcotest.test_case "bgpq4 incompatible" `Quick test_bgpq4_incompatible;
    Alcotest.test_case "table 1" `Quick test_table1;
    Alcotest.test_case "rules per aut-num" `Quick test_rules_per_aut_num;
    Alcotest.test_case "table 2" `Quick test_table2;
    Alcotest.test_case "route stats" `Quick test_route_stats;
    Alcotest.test_case "as-set stats" `Quick test_as_set_stats;
    Alcotest.test_case "filter kinds / peerings" `Quick test_filter_kinds_and_peerings;
    Alcotest.test_case "error stats" `Quick test_error_stats;
    Alcotest.test_case "ccdf rules" `Quick test_ccdf_rules;
    Alcotest.test_case "loop and depth stats" `Quick test_loop_and_depth_stats;
    Alcotest.test_case "coverage" `Quick test_coverage ]
