(* Tests for rz_topology: structural invariants of the synthetic AS graph. *)
module Gen = Rz_topology.Gen
module Rel_db = Rz_asrel.Rel_db

let small_params = { Gen.default_params with n_tier1 = 4; n_mid = 30; n_stub = 100 }
let topo () = Gen.generate small_params

let test_counts () =
  let t = topo () in
  Alcotest.(check int) "total ASes" 134 (Gen.n_ases t);
  let count tier =
    Array.to_list t.ases |> List.filter (fun a -> Gen.tier t a = tier) |> List.length
  in
  Alcotest.(check int) "tier1" 4 (count Gen.Tier1);
  Alcotest.(check int) "mid" 30 (count Gen.Mid);
  Alcotest.(check int) "stub" 100 (count Gen.Stub)

let test_deterministic () =
  let a = Gen.generate small_params and b = Gen.generate small_params in
  Alcotest.(check bool) "same ases" true (a.ases = b.ases);
  Alcotest.(check string) "same relationships" (Rel_db.to_string a.rels)
    (Rel_db.to_string b.rels)

let test_seed_changes_graph () =
  let a = Gen.generate small_params in
  let b = Gen.generate { small_params with seed = 43 } in
  Alcotest.(check bool) "different graphs" false
    (Rel_db.to_string a.rels = Rel_db.to_string b.rels)

let test_tier1_clique () =
  let t = topo () in
  let tier1s = Array.to_list (Array.sub t.ases 0 4) in
  Alcotest.(check (list int)) "clique registered" tier1s (Rel_db.clique t.rels);
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a <> b then
            Alcotest.(check bool) "tier1s peer" true (Rel_db.relationship t.rels a b = Rel_db.Peers))
        tier1s;
      Alcotest.(check (list int)) "tier1 has no providers" [] (Rel_db.providers t.rels a))
    tier1s

let test_everyone_reaches_tier1 () =
  (* every non-tier1 AS has at least one provider, and following providers
     reaches a Tier-1 (no orphan islands) *)
  let t = topo () in
  Array.iter
    (fun asn ->
      if Gen.tier t asn <> Gen.Tier1 then begin
        Alcotest.(check bool)
          (Printf.sprintf "AS%d has a provider" asn)
          true
          (Rel_db.providers t.rels asn <> []);
        let rec climbs asn depth =
          if depth > 20 then false
          else if Gen.tier t asn = Gen.Tier1 then true
          else
            match Rel_db.providers t.rels asn with
            | [] -> false
            | p :: _ -> climbs p (depth + 1)
        in
        Alcotest.(check bool) (Printf.sprintf "AS%d reaches tier1" asn) true (climbs asn 0)
      end)
    t.ases

let test_p2c_acyclic () =
  (* provider->customer edges form a DAG: Kahn's algorithm consumes all *)
  let t = topo () in
  let indegree = Hashtbl.create 256 in
  Array.iter
    (fun asn -> Hashtbl.replace indegree asn (List.length (Rel_db.providers t.rels asn)))
    t.ases;
  let queue = Queue.create () in
  Array.iter (fun asn -> if Hashtbl.find indegree asn = 0 then Queue.add asn queue) t.ases;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    incr seen;
    List.iter
      (fun c ->
        let d = Hashtbl.find indegree c - 1 in
        Hashtbl.replace indegree c d;
        if d = 0 then Queue.add c queue)
      (Rel_db.customers t.rels x)
  done;
  Alcotest.(check int) "all ASes sorted (acyclic)" (Gen.n_ases t) !seen

let test_stubs_have_no_customers () =
  let t = topo () in
  Array.iter
    (fun asn ->
      if Gen.tier t asn = Gen.Stub then
        Alcotest.(check (list int)) "stub has no customers" [] (Rel_db.customers t.rels asn))
    t.ases

let test_prefix_origination () =
  let t = topo () in
  let seen = Hashtbl.create 1024 in
  Array.iter
    (fun asn ->
      let prefixes = Gen.prefixes_of t asn in
      Alcotest.(check bool) "at least one prefix" true (prefixes <> []);
      Alcotest.(check bool) "within cap" true
        (List.length prefixes <= small_params.max_prefixes);
      List.iter
        (fun pfx ->
          let key = Rz_net.Prefix.to_string pfx in
          Alcotest.(check bool) ("unique " ^ key) false (Hashtbl.mem seen key);
          Hashtbl.replace seen key ();
          Alcotest.(check bool) "not martian space" false (Rz_net.Martian.is_martian pfx))
        prefixes)
    t.ases

let test_v6_fraction_positive () =
  let t = topo () in
  let all = Array.to_list t.ases |> List.concat_map (Gen.prefixes_of t) in
  let v6 = List.length (List.filter Rz_net.Prefix.is_v6 all) in
  Alcotest.(check bool) "some v6" true (v6 > 0);
  Alcotest.(check bool) "v4 majority" true (v6 * 2 < List.length all)

let suite =
  [ Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "seed changes graph" `Quick test_seed_changes_graph;
    Alcotest.test_case "tier1 clique" `Quick test_tier1_clique;
    Alcotest.test_case "everyone reaches tier1" `Quick test_everyone_reaches_tier1;
    Alcotest.test_case "p2c acyclic" `Quick test_p2c_acyclic;
    Alcotest.test_case "stubs have no customers" `Quick test_stubs_have_no_customers;
    Alcotest.test_case "prefix origination" `Quick test_prefix_origination;
    Alcotest.test_case "v6 fraction" `Quick test_v6_fraction_positive ]
