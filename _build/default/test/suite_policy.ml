(* Tests for rz_policy: lexer, peering/action/filter/rule parsing,
   including the paper's real-world examples (AS38639, AS8323, AS14595,
   AS199284). *)
open Rz_policy
module Ast = Rz_policy.Ast

let rule dir mp text =
  match Parser.parse_rule ~direction:dir ~multiprotocol:mp text with
  | Ok r -> r
  | Error e -> Alcotest.fail (text ^ ": " ^ e)

let filter text =
  match Parser.parse_filter text with Ok f -> f | Error e -> Alcotest.fail (text ^ ": " ^ e)

(* ---------------- lexer ---------------- *)

let test_lexer_tokens () =
  match Lexer.tokenize "from AS1 action pref=10; community .= {65000:1}; accept <^AS1$> AND NOT {10.0.0.0/8^+}" with
  | Error e -> Alcotest.fail e
  | Ok toks ->
    let strings = List.map Lexer.token_to_string toks in
    Alcotest.(check bool) "has regex token" true (List.mem "<^AS1$>" strings);
    Alcotest.(check bool) "has .= token" true (List.mem ".=" strings);
    Alcotest.(check bool) "has = token" true (List.mem "=" strings);
    Alcotest.(check bool) "prefix keeps op" true (List.mem "10.0.0.0/8^+" strings)

let test_lexer_unterminated_regex () =
  Alcotest.(check bool) "error" true (Result.is_error (Lexer.tokenize "accept <^AS1"))

(* ---------------- peerings ---------------- *)

let test_peering_simple_asn () =
  match Parser.parse_peering "AS65001" with
  | Ok (Ast.Peering_spec { as_expr = Ast.Asn 65001; remote_router = None; local_router = None }) -> ()
  | Ok p -> Alcotest.fail (Ast.peering_to_string p)
  | Error e -> Alcotest.fail e

let test_peering_as_any () =
  match Parser.parse_peering "AS-ANY" with
  | Ok (Ast.Peering_spec { as_expr = Ast.Any_as; _ }) -> ()
  | _ -> Alcotest.fail "expected AS-ANY"

let test_peering_set_ref () =
  match Parser.parse_peering "PRNG-EXAMPLE" with
  | Ok (Ast.Peering_set_ref "PRNG-EXAMPLE") -> ()
  | _ -> Alcotest.fail "expected peering-set ref"

let test_peering_routers () =
  (match Parser.parse_peering "AS1 7.7.7.2 at 7.7.7.1" with
   | Ok (Ast.Peering_spec
           { as_expr = Ast.Asn 1;
             remote_router = Some (Ast.Rtr_addr "7.7.7.2");
             local_router = Some (Ast.Rtr_addr "7.7.7.1") }) -> ()
   | Ok p -> Alcotest.fail (Ast.peering_to_string p)
   | Error e -> Alcotest.fail e);
  (* inet-rtr names and rtrs- sets classify structurally *)
  (match Parser.parse_peering "AS1 rtrs-backbone at rtr1.example.net" with
   | Ok (Ast.Peering_spec
           { remote_router = Some (Ast.Rtr_set "rtrs-backbone");
             local_router = Some (Ast.Rtr_name "rtr1.example.net"); _ }) -> ()
   | Ok p -> Alcotest.fail (Ast.peering_to_string p)
   | Error e -> Alcotest.fail e);
  (* composite router expressions *)
  match Parser.parse_peering "AS1 (7.7.7.2 OR 7.7.7.3)" with
  | Ok (Ast.Peering_spec
          { remote_router = Some (Ast.Rtr_or (Ast.Rtr_addr "7.7.7.2", Ast.Rtr_addr "7.7.7.3")); _ }) -> ()
  | Ok p -> Alcotest.fail (Ast.peering_to_string p)
  | Error e -> Alcotest.fail e

let test_peering_expression () =
  match Parser.parse_as_expr "AS1 OR AS2 AND AS-FOO" with
  | Ok (Ast.And (Ast.Or (Ast.Asn 1, Ast.Asn 2), Ast.As_set "AS-FOO")) -> ()
  | Ok e -> Alcotest.fail (Ast.as_expr_to_string e)
  | Error e -> Alcotest.fail e

let test_peering_except () =
  (* the paper's AS199284 final refine: AS-ANY EXCEPT (a OR b OR c) *)
  match Parser.parse_as_expr "AS-ANY EXCEPT (AS40027 OR AS63293 OR AS65535)" with
  | Ok (Ast.Except_as (Ast.Any_as, _)) -> ()
  | Ok e -> Alcotest.fail (Ast.as_expr_to_string e)
  | Error e -> Alcotest.fail e

let test_peering_hierarchical_set () =
  match Parser.parse_peering "AS8267:AS-Krakow-1014" with
  | Ok (Ast.Peering_spec { as_expr = Ast.As_set "AS8267:AS-Krakow-1014"; _ }) -> ()
  | _ -> Alcotest.fail "expected hierarchical as-set"

(* ---------------- filters ---------------- *)

let test_filter_keywords () =
  Alcotest.(check bool) "ANY" true (filter "ANY" = Ast.Any);
  Alcotest.(check bool) "AS-ANY as filter" true (filter "AS-ANY" = Ast.Any);
  Alcotest.(check bool) "PeerAS" true (filter "PeerAS" = Ast.Peer_as_filter);
  Alcotest.(check bool) "fltr-martian" true (filter "fltr-martian" = Ast.Fltr_martian)

let test_filter_asn_with_op () =
  (match filter "AS65001" with
   | Ast.As_num (65001, Rz_net.Range_op.None_) -> ()
   | f -> Alcotest.fail (Ast.filter_to_string f));
  match filter "AS65001^24-32" with
  | Ast.As_num (65001, Rz_net.Range_op.Range (24, 32)) -> ()
  | f -> Alcotest.fail (Ast.filter_to_string f)

let test_filter_set_refs () =
  (match filter "AS-HANABI^+" with
   | Ast.As_set_ref ("AS-HANABI", Rz_net.Range_op.Plus) -> ()
   | f -> Alcotest.fail (Ast.filter_to_string f));
  (* route-set with range op: the non-standard syntax the paper supports *)
  (match filter "RS-ROUTES^24" with
   | Ast.Route_set_ref ("RS-ROUTES", Rz_net.Range_op.Exact 24) -> ()
   | f -> Alcotest.fail (Ast.filter_to_string f));
  match filter "FLTR-BOGONS" with
  | Ast.Filter_set_ref "FLTR-BOGONS" -> ()
  | f -> Alcotest.fail (Ast.filter_to_string f)

let test_filter_prefix_set () =
  match filter "{ 128.9.0.0/16, 128.8.0.0/16^+, 128.7.128.0/17^24-25 }^-" with
  | Ast.Prefix_set ([ (_, op1); (_, op2); (_, op3) ], outer) ->
    Alcotest.(check bool) "member ops" true
      (op1 = Rz_net.Range_op.None_ && op2 = Rz_net.Range_op.Plus
       && op3 = Rz_net.Range_op.Range (24, 25));
    Alcotest.(check bool) "outer op" true (outer = Rz_net.Range_op.Minus)
  | f -> Alcotest.fail (Ast.filter_to_string f)

let test_filter_composite () =
  match filter "ANY AND NOT {0.0.0.0/0, ::/0}" with
  | Ast.And_f (Ast.Any, Ast.Not_f (Ast.Prefix_set ([ _; _ ], _))) -> ()
  | f -> Alcotest.fail (Ast.filter_to_string f)

let test_filter_or_precedence () =
  (* AND binds tighter than OR *)
  match filter "AS1 OR AS2 AND AS3" with
  | Ast.Or_f (Ast.As_num (1, _), Ast.And_f (Ast.As_num (2, _), Ast.As_num (3, _))) -> ()
  | f -> Alcotest.fail (Ast.filter_to_string f)

let test_filter_regex () =
  match filter "<^AS13911 AS6327+$>" with
  | Ast.Path_regex _ -> ()
  | f -> Alcotest.fail (Ast.filter_to_string f)

let test_filter_community () =
  (match filter "community(65535:666)" with
   | Ast.Community ("", [ "65535:666" ]) -> ()
   | f -> Alcotest.fail (Ast.filter_to_string f));
  match filter "community.contains(65000:1, 65000:2)" with
  | Ast.Community ("contains", [ "65000:1"; "65000:2" ]) -> ()
  | f -> Alcotest.fail (Ast.filter_to_string f)

let test_filter_bare_prefix () =
  match filter "192.0.2.0/24^+" with
  | Ast.Prefix_set ([ (_, Rz_net.Range_op.Plus) ], Rz_net.Range_op.None_) -> ()
  | f -> Alcotest.fail (Ast.filter_to_string f)

let test_filter_errors () =
  let bad s = Alcotest.(check bool) s true (Result.is_error (Parser.parse_filter s)) in
  bad "";
  bad "NOT";
  bad "(AS1";
  bad "FOO-BAR";
  bad "{10.0.0.0/8";
  bad "AS1 AND"

(* ---------------- rules ---------------- *)

let test_rule_simple_export () =
  (* AS38639's rule from Section 2 *)
  let r = rule `Export false "to AS4713 announce AS-HANABI" in
  match r.expr with
  | Ast.Term_e { afi = []; factors = [ { peerings = [ pa ]; filter = Ast.As_set_ref ("AS-HANABI", _) } ] } ->
    (match pa.peering with
     | Ast.Peering_spec { as_expr = Ast.Asn 4713; _ } -> ()
     | _ -> Alcotest.fail "wrong peering")
  | _ -> Alcotest.fail "wrong structure"

let test_rule_multiple_peerings_share_filter () =
  (* AS8323's rule from Appendix A: two from-clauses, one filter *)
  let r =
    rule `Import false
      "from AS8267:AS-Krakow-1014 action pref=50; from AS8267:AS-Krakow-1015 action pref=50; accept PeerAS"
  in
  match r.expr with
  | Ast.Term_e { factors = [ { peerings = [ pa1; pa2 ]; filter = Ast.Peer_as_filter } ]; _ } ->
    Alcotest.(check (option int)) "pref 1" (Some 50) (Ast.pref_of_actions pa1.actions);
    Alcotest.(check (option int)) "pref 2" (Some 50) (Ast.pref_of_actions pa2.actions)
  | _ -> Alcotest.fail "wrong structure"

let test_rule_refine_with_afi () =
  (* AS14595's compound rule from Section 2 *)
  let r =
    rule `Import true
      "afi any.unicast from AS13911 accept ANY AND NOT {0.0.0.0/0, ::0/0} REFINE afi ipv4.unicast from AS13911 action pref=200; accept <^AS13911 AS6327+$>"
  in
  match r.expr with
  | Ast.Refine_e (outer, Ast.Term_e inner) ->
    Alcotest.(check int) "outer afi count" 1 (List.length outer.afi);
    Alcotest.(check string) "outer afi" "any.unicast" (Rz_net.Afi.to_string (List.hd outer.afi));
    Alcotest.(check string) "inner afi" "ipv4.unicast" (Rz_net.Afi.to_string (List.hd inner.afi));
    (match (List.hd inner.factors).peerings with
     | [ pa ] -> Alcotest.(check (option int)) "pref" (Some 200) (Ast.pref_of_actions pa.actions)
     | _ -> Alcotest.fail "inner peerings")
  | _ -> Alcotest.fail "expected refine"

let test_rule_braced_factors () =
  let r =
    rule `Import true
      "afi any { from AS1 accept ANY; from AS2 accept AS2; } REFINE afi any { from AS-ANY accept NOT AS9^+; }"
  in
  match r.expr with
  | Ast.Refine_e (outer, Ast.Term_e inner) ->
    Alcotest.(check int) "outer factors" 2 (List.length outer.factors);
    Alcotest.(check int) "inner factors" 1 (List.length inner.factors)
  | _ -> Alcotest.fail "expected refine with braces"

let test_rule_except () =
  let r = rule `Import false "from AS1 accept ANY EXCEPT from AS2 accept AS2" in
  match r.expr with
  | Ast.Except_e (_, Ast.Term_e _) -> ()
  | _ -> Alcotest.fail "expected except"

let test_rule_protocol_prefix () =
  let r = rule `Import false "protocol BGP4 into BGP4 from AS1 accept ANY" in
  Alcotest.(check (option string)) "protocol" (Some "BGP4") r.protocol;
  Alcotest.(check (option string)) "into" (Some "BGP4") r.into_protocol

let test_rule_action_method_calls () =
  let r =
    rule `Import false
      "from AS-ANY action community.delete(64628:10, 64628:11); accept ANY"
  in
  match r.expr with
  | Ast.Term_e { factors = [ { peerings = [ pa ]; _ } ]; _ } ->
    (match pa.actions with
     | [ Ast.Method_call ("community", "delete", [ "64628:10"; "64628:11" ]) ] -> ()
     | _ -> Alcotest.fail "wrong actions")
  | _ -> Alcotest.fail "wrong structure"

let test_rule_action_append () =
  let r = rule `Import false "from AS15725 action community .= { 64628:20 }; accept ANY" in
  match r.expr with
  | Ast.Term_e { factors = [ { peerings = [ pa ]; _ } ]; _ } ->
    (match pa.actions with
     | [ Ast.Append_op ("community", [ "64628:20" ]) ] -> ()
     | _ -> Alcotest.fail "wrong actions")
  | _ -> Alcotest.fail "wrong structure"

let test_rule_as199284_full () =
  (* The full monster rule from Appendix A parses. *)
  let text =
    "afi any { from AS-ANY action community.delete(64628:10, 64628:11, 64628:12); accept ANY; } \
     REFINE afi any { from AS-ANY action pref = 65535; accept community(65535:0); from AS-ANY action pref = 65435; accept ANY; } \
     REFINE afi any { from AS-ANY accept NOT AS199284^+; } \
     REFINE afi ipv4 { from AS-ANY accept NOT fltr-martian; } \
     REFINE afi ipv4 { from AS-ANY accept { 0.0.0.0/0^24 } AND NOT community(65535:666); from AS-ANY accept { 0.0.0.0/0^24-32 } AND community(65535:666); } \
     REFINE afi ipv6 { from AS-ANY accept { 2000::/3^4-48 } AND NOT community(65535:666); from AS-ANY accept { 2000::/3^64-128 } AND community(65535:666); } \
     REFINE afi any { from AS15725 action community .= { 64628:20 }; accept AS-IKS AND <AS-IKS+$>; from AS-ANY action community .= { 64628:22 }; accept PeerAS and <^PeerAS+$>; } \
     REFINE afi any { from AS-ANY EXCEPT (AS40027 OR AS63293 OR AS65535) accept ANY; }"
  in
  let r = rule `Import true text in
  Alcotest.(check int) "8 refine levels" 8 (List.length (Ast.expr_terms r.expr))

let test_rule_errors () =
  let bad dir s =
    Alcotest.(check bool) s true
      (Result.is_error (Parser.parse_rule ~direction:dir ~multiprotocol:false s))
  in
  bad `Import "";
  bad `Import "from accept ANY";
  bad `Import "accept ANY";
  bad `Import "from AS1 announce ANY" (* wrong verb for imports *);
  bad `Export "to AS1 accept ANY";
  bad `Import "from AS1 accept";
  bad `Import "from AS1 accept ANY trailing garbage"

let test_rule_roundtrip_reparse () =
  (* parse |> to_string |> parse is a fixpoint on the AST *)
  List.iter
    (fun (dir, mp, text) ->
      let r1 = rule dir mp text in
      let rendered = Ast.rule_to_string r1 in
      let body =
        (* strip the "attr: " prefix the renderer adds *)
        match String.index_opt rendered ':' with
        | Some i -> String.sub rendered (i + 1) (String.length rendered - i - 1)
        | None -> rendered
      in
      let r2 = rule dir mp body in
      Alcotest.(check string) ("roundtrip " ^ text) rendered (Ast.rule_to_string r2))
    [ (`Export, false, "to AS4713 announce AS-HANABI");
      (`Import, false, "from AS1 action pref=10; accept { 10.0.0.0/8^16-24 }");
      (`Import, true, "afi ipv6.unicast from AS1 accept ANY AND NOT {::/0}");
      (`Import, false, "from AS1 accept ANY EXCEPT from AS2 accept AS2");
      (`Import, false, "from AS-ANY accept PeerAS AND <^PeerAS+$>") ]

let test_parse_members () =
  Alcotest.(check (list string)) "commas and spaces" [ "AS1"; "AS2"; "AS-X" ]
    (Parser.parse_members "AS1, AS2,AS-X");
  Alcotest.(check (list string)) "whitespace only" [ "AS1"; "AS2" ]
    (Parser.parse_members "AS1 AS2");
  Alcotest.(check (list string)) "empty" [] (Parser.parse_members "  ")

let suite =
  [ Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer unterminated regex" `Quick test_lexer_unterminated_regex;
    Alcotest.test_case "peering simple asn" `Quick test_peering_simple_asn;
    Alcotest.test_case "peering AS-ANY" `Quick test_peering_as_any;
    Alcotest.test_case "peering set ref" `Quick test_peering_set_ref;
    Alcotest.test_case "peering routers" `Quick test_peering_routers;
    Alcotest.test_case "peering expression" `Quick test_peering_expression;
    Alcotest.test_case "peering except" `Quick test_peering_except;
    Alcotest.test_case "peering hierarchical set" `Quick test_peering_hierarchical_set;
    Alcotest.test_case "filter keywords" `Quick test_filter_keywords;
    Alcotest.test_case "filter asn with op" `Quick test_filter_asn_with_op;
    Alcotest.test_case "filter set refs" `Quick test_filter_set_refs;
    Alcotest.test_case "filter prefix set" `Quick test_filter_prefix_set;
    Alcotest.test_case "filter composite" `Quick test_filter_composite;
    Alcotest.test_case "filter precedence" `Quick test_filter_or_precedence;
    Alcotest.test_case "filter regex" `Quick test_filter_regex;
    Alcotest.test_case "filter community" `Quick test_filter_community;
    Alcotest.test_case "filter bare prefix" `Quick test_filter_bare_prefix;
    Alcotest.test_case "filter errors" `Quick test_filter_errors;
    Alcotest.test_case "rule simple export (AS38639)" `Quick test_rule_simple_export;
    Alcotest.test_case "rule shared filter (AS8323)" `Quick test_rule_multiple_peerings_share_filter;
    Alcotest.test_case "rule refine with afi (AS14595)" `Quick test_rule_refine_with_afi;
    Alcotest.test_case "rule braced factors" `Quick test_rule_braced_factors;
    Alcotest.test_case "rule except" `Quick test_rule_except;
    Alcotest.test_case "rule protocol prefix" `Quick test_rule_protocol_prefix;
    Alcotest.test_case "rule action method calls" `Quick test_rule_action_method_calls;
    Alcotest.test_case "rule action append" `Quick test_rule_action_append;
    Alcotest.test_case "rule AS199284 full" `Quick test_rule_as199284_full;
    Alcotest.test_case "rule errors" `Quick test_rule_errors;
    Alcotest.test_case "rule roundtrip reparse" `Quick test_rule_roundtrip_reparse;
    Alcotest.test_case "parse members" `Quick test_parse_members ]
