(* Tests for rz_util: SplitMix64, descriptive stats, table rendering. *)
open Rz_util

let test_splitmix_deterministic () =
  let a = Splitmix.create 42 and b = Splitmix.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix.next a) (Splitmix.next b)
  done

let test_splitmix_seed_changes_stream () =
  let a = Splitmix.create 1 and b = Splitmix.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Splitmix.next a <> Splitmix.next b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_splitmix_int_bounds () =
  let rng = Splitmix.create 7 in
  for _ = 1 to 1000 do
    let v = Splitmix.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_splitmix_int_rejects_nonpositive () =
  let rng = Splitmix.create 7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Splitmix.int: bound <= 0") (fun () ->
      ignore (Splitmix.int rng 0))

let test_splitmix_int_in () =
  let rng = Splitmix.create 3 in
  for _ = 1 to 200 do
    let v = Splitmix.int_in rng 5 9 in
    Alcotest.(check bool) "in [5,9]" true (v >= 5 && v <= 9)
  done

let test_splitmix_float_range () =
  let rng = Splitmix.create 11 in
  for _ = 1 to 1000 do
    let f = Splitmix.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_splitmix_copy_independent () =
  let a = Splitmix.create 5 in
  ignore (Splitmix.next a);
  let b = Splitmix.copy a in
  Alcotest.(check int64) "copies continue identically" (Splitmix.next a) (Splitmix.next b)

let test_weighted_respects_zero () =
  let rng = Splitmix.create 1 in
  for _ = 1 to 100 do
    let v = Splitmix.weighted rng [ (0.0, `A); (1.0, `B) ] in
    Alcotest.(check bool) "never picks zero-weight" true (v = `B)
  done

let test_shuffle_permutation () =
  let rng = Splitmix.create 9 in
  let arr = Array.init 20 Fun.id in
  Splitmix.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let test_sample_distinct () =
  let rng = Splitmix.create 13 in
  let sample = Splitmix.sample rng 5 (Array.init 10 Fun.id) in
  Alcotest.(check int) "5 elements" 5 (Array.length sample);
  let sorted = Array.to_list sample |> List.sort_uniq compare in
  Alcotest.(check int) "distinct" 5 (List.length sorted)

let test_ccdf_simple () =
  let ccdf = Stats_util.ccdf [ 1; 2; 2; 5 ] in
  Alcotest.(check int) "three distinct values" 3 (List.length ccdf);
  Alcotest.(check (float 1e-9)) "P(>=1)" 1.0 (List.assoc 1 ccdf);
  Alcotest.(check (float 1e-9)) "P(>=2)" 0.75 (List.assoc 2 ccdf);
  Alcotest.(check (float 1e-9)) "P(>=5)" 0.25 (List.assoc 5 ccdf)

let test_ccdf_empty () = Alcotest.(check int) "empty" 0 (List.length (Stats_util.ccdf []))

let test_ccdf_at () =
  let points = Stats_util.ccdf_at [ 0; 0; 3; 10 ] [ 1; 10; 100 ] in
  Alcotest.(check (float 1e-9)) "P(>=1)" 0.5 (List.assoc 1 points);
  Alcotest.(check (float 1e-9)) "P(>=10)" 0.25 (List.assoc 10 points);
  Alcotest.(check (float 1e-9)) "P(>=100)" 0.0 (List.assoc 100 points)

let test_percentile () =
  let samples = [ 5; 1; 9; 3; 7 ] in
  Alcotest.(check int) "median" 5 (Stats_util.percentile 50.0 samples);
  Alcotest.(check int) "min" 1 (Stats_util.percentile 0.0 samples);
  Alcotest.(check int) "max" 9 (Stats_util.percentile 100.0 samples)

let test_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats_util.mean [ 1; 2; 3; 4 ]);
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 (Stats_util.mean [])

let test_fraction () =
  Alcotest.(check (float 1e-9)) "half" 0.5 (Stats_util.fraction (fun x -> x > 2) [ 1; 2; 3; 4 ])

let test_bucketize () =
  let buckets = Stats_util.bucketize ~edges:[ 0; 10; 100 ] [ 5; 50; 500; 7 ] in
  Alcotest.(check int) "[0,10)" 2 (List.assoc "[0,10)" buckets);
  Alcotest.(check int) "[10,100)" 1 (List.assoc "[10,100)" buckets);
  Alcotest.(check int) "[100,inf)" 1 (List.assoc "[100,inf)" buckets)

let test_table_render () =
  let text = Table.render ~header:[ "a"; "b" ] [ [ "xx"; "1" ]; [ "y"; "22" ] ] in
  Alcotest.(check bool) "has rule line" true (String.length text > 0);
  let lines = String.split_on_char '\n' text in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines)

let test_pct_and_commas () =
  Alcotest.(check string) "pct" "53.2%" (Table.pct 0.532);
  Alcotest.(check string) "commas" "78,701" (Table.commas 78701);
  Alcotest.(check string) "small" "42" (Table.commas 42);
  Alcotest.(check string) "million" "1,000,000" (Table.commas 1000000)

let test_strings_strip () =
  Alcotest.(check string) "strip" "abc" (Strings.strip "  abc\t\n");
  Alcotest.(check string) "empty" "" (Strings.strip "   ")

let test_strings_split_on_string () =
  Alcotest.(check (list string)) "split" [ "a"; "b"; "c" ]
    (Strings.split_on_string ~sep:"::" "a::b::c");
  Alcotest.(check (list string)) "no sep" [ "abc" ] (Strings.split_on_string ~sep:"::" "abc")

let test_strings_misc () =
  Alcotest.(check bool) "ci prefix" true (Strings.starts_with_ci ~prefix:"as-" "AS-FOO");
  Alcotest.(check bool) "ci equal" true (Strings.equal_ci "PeerAS" "PEERAS");
  Alcotest.(check bool) "blank" true (Strings.is_blank " \t ");
  Alcotest.(check (list string)) "words" [ "a"; "b" ] (Strings.split_words "  a\t b ");
  Alcotest.(check string) "chop" "abc " (Strings.chop_comment '#' "abc # comment")

let geometric_nonnegative =
  QCheck.Test.make ~name:"geometric is non-negative" ~count:200 QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Splitmix.create seed in
      Splitmix.geometric rng 0.5 >= 0)

let pareto_bounded =
  QCheck.Test.make ~name:"pareto_int respects bounds" ~count:200 QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Splitmix.create seed in
      let v = Splitmix.pareto_int rng ~alpha:1.2 ~xmin:1 ~max:50 in
      v >= 1 && v <= 50)

let suite =
  [ Alcotest.test_case "splitmix deterministic" `Quick test_splitmix_deterministic;
    Alcotest.test_case "splitmix seeds differ" `Quick test_splitmix_seed_changes_stream;
    Alcotest.test_case "splitmix int bounds" `Quick test_splitmix_int_bounds;
    Alcotest.test_case "splitmix int rejects <= 0" `Quick test_splitmix_int_rejects_nonpositive;
    Alcotest.test_case "splitmix int_in" `Quick test_splitmix_int_in;
    Alcotest.test_case "splitmix float range" `Quick test_splitmix_float_range;
    Alcotest.test_case "splitmix copy" `Quick test_splitmix_copy_independent;
    Alcotest.test_case "weighted skips zero weight" `Quick test_weighted_respects_zero;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
    Alcotest.test_case "sample distinct" `Quick test_sample_distinct;
    Alcotest.test_case "ccdf simple" `Quick test_ccdf_simple;
    Alcotest.test_case "ccdf empty" `Quick test_ccdf_empty;
    Alcotest.test_case "ccdf at thresholds" `Quick test_ccdf_at;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "fraction" `Quick test_fraction;
    Alcotest.test_case "bucketize" `Quick test_bucketize;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "pct / commas" `Quick test_pct_and_commas;
    Alcotest.test_case "strings strip" `Quick test_strings_strip;
    Alcotest.test_case "strings split_on_string" `Quick test_strings_split_on_string;
    Alcotest.test_case "strings misc" `Quick test_strings_misc;
    QCheck_alcotest.to_alcotest geometric_nonnegative;
    QCheck_alcotest.to_alcotest pareto_bounded ]
