(* Tests for rz_lint: each check fires on a crafted fixture and stays
   silent on clean input. *)
module Linter = Rz_lint.Linter
module Rel_db = Rz_asrel.Rel_db

let db_of text = Rz_irr.Db.of_dumps [ ("TEST", text) ]

let has check diags = List.exists (fun (d : Linter.diagnostic) -> d.check = check) diags
let has_for check obj diags =
  List.exists (fun (d : Linter.diagnostic) -> d.check = check && d.obj = obj) diags

let test_clean_input_is_quiet () =
  let db =
    db_of
      "aut-num: AS1\nimport: from AS2 accept AS-CONE\nexport: to AS2 announce AS1\n\n\
       as-set: AS-CONE\nmembers: AS2, AS3\n\n\
       route: 192.0.2.0/24\norigin: AS1\n\nroute: 198.51.100.0/24\norigin: AS2\n"
  in
  let diags = Linter.lint db in
  Alcotest.(check (list string)) "only unreferenced-set style suggestions"
    []
    (List.filter_map
       (fun (d : Linter.diagnostic) ->
         if d.severity = Linter.Error then Some (Linter.diagnostic_to_string d) else None)
       diags)

let test_empty_and_singleton_sets () =
  let db = db_of "as-set: AS-EMPTY\n\nas-set: AS-ONE\nmembers: AS5\n" in
  let diags = Linter.lint db in
  Alcotest.(check bool) "empty" true (has_for Linter.Empty_set "AS-EMPTY" diags);
  Alcotest.(check bool) "singleton" true (has_for Linter.Singleton_set "AS-ONE" diags);
  Alcotest.(check bool) "empty is not singleton" false
    (has_for Linter.Singleton_set "AS-EMPTY" diags)

let test_loop_and_depth () =
  let db =
    db_of
      "as-set: AS-A\nmembers: AS-B\n\nas-set: AS-B\nmembers: AS-A\n\n\
       as-set: AS-D1\nmembers: AS-D2\n\nas-set: AS-D2\nmembers: AS-D3\n\n\
       as-set: AS-D3\nmembers: AS-D4\n\nas-set: AS-D4\nmembers: AS-D5\n\n\
       as-set: AS-D5\nmembers: AS1\n"
  in
  let diags = Linter.lint db in
  Alcotest.(check bool) "loop flagged" true (has_for Linter.Set_loop "AS-A" diags);
  Alcotest.(check bool) "deep flagged" true (has_for Linter.Deep_set "AS-D1" diags);
  Alcotest.(check bool) "shallow not flagged" false (has_for Linter.Deep_set "AS-D5" diags)

let test_reserved_and_invalid_names () =
  let db = db_of "as-set: AS-X\nmembers: ANY\n\nas-set: NOTASET\nmembers: AS1\n" in
  let diags = Linter.lint db in
  Alcotest.(check bool) "reserved member" true (has Linter.Reserved_word_member diags);
  Alcotest.(check bool) "invalid name" true (has_for Linter.Invalid_set_name "NOTASET" diags)

let test_unknown_members () =
  let db =
    db_of
      "as-set: AS-X\nmembers: AS1, AS-MISSING\n\n\
       aut-num: AS9\nimport: from AS1 accept AS-NOWHERE\nexport: to AS1 announce RS-NOWHERE\n"
  in
  let diags = Linter.lint db in
  Alcotest.(check bool) "unknown set member" true (has_for Linter.Unknown_member "AS-X" diags);
  Alcotest.(check bool) "unknown filter as-set" true (has_for Linter.Unknown_member "AS9" diags)

let test_zero_rules_and_direction () =
  let db = db_of "aut-num: AS1\n\naut-num: AS2\nimport: from AS1 accept ANY\n" in
  let diags = Linter.lint db in
  Alcotest.(check bool) "zero rules" true (has_for Linter.Zero_rules "AS1" diags);
  Alcotest.(check bool) "missing exports" true (has_for Linter.Missing_direction "AS2" diags)

let test_filter_without_routes_and_route_set_hint () =
  let db =
    db_of
      "aut-num: AS1\nimport: from AS2 accept AS2\nimport: from AS3 accept AS3\n\
       export: to AS2 announce AS1\n\n\
       route: 192.0.2.0/24\norigin: AS3\n\nroute: 203.0.113.0/24\norigin: AS1\n"
  in
  let diags = Linter.lint db in
  (* AS2 has no route objects; AS3 does *)
  Alcotest.(check bool) "zero-route filter" true (has Linter.Filter_without_routes diags);
  Alcotest.(check bool) "route-set recommendation" true
    (has Linter.Asn_filter_could_be_route_set diags)

let test_private_asn_leak () =
  let db = db_of "aut-num: AS1\nimport: from AS64512 accept ANY\nexport: to AS64512 announce AS1\n" in
  Alcotest.(check bool) "private asn" true (has Linter.Private_asn_leak (Linter.lint db))

let test_unreferenced_sets () =
  let db =
    db_of
      "aut-num: AS1\nimport: from AS2 accept AS-USED\nexport: to AS2 announce AS1\n\n\
       as-set: AS-USED\nmembers: AS2\n\nas-set: AS-ORPHAN\nmembers: AS3\n\n\
       route: 192.0.2.0/24\norigin: AS1\n\nroute: 198.51.100.0/24\norigin: AS2\n"
  in
  let diags = Linter.lint db in
  Alcotest.(check bool) "orphan flagged" true (has_for Linter.Unreferenced_set "AS-ORPHAN" diags);
  Alcotest.(check bool) "used not flagged" false (has_for Linter.Unreferenced_set "AS-USED" diags)

let rels_fixture () =
  let rels = Rel_db.create () in
  Rel_db.add_p2c rels ~provider:10 ~customer:2;
  Rel_db.add_p2c rels ~provider:2 ~customer:3;
  Rel_db.add_p2c rels ~provider:100 ~customer:10;
  Rel_db.add_p2p rels 10 20;
  rels

let test_export_self_misuse () =
  (* AS10 is transit (customer AS2) and announces only itself *)
  let db =
    db_of "aut-num: AS10\nexport: to AS100 announce AS10\nimport: from AS100 accept ANY\n"
  in
  let diags = Linter.lint ~rels:(rels_fixture ()) db in
  Alcotest.(check bool) "export self" true (has_for Linter.Export_self_misuse "AS10" diags)

let test_import_customer_misuse () =
  (* AS10 imports from transit customer AS2 with filter AS2 *)
  let db =
    db_of "aut-num: AS10\nimport: from AS2 accept AS2\nexport: to AS2 announce ANY\n"
  in
  let diags = Linter.lint ~rels:(rels_fixture ()) db in
  Alcotest.(check bool) "import customer" true
    (has_for Linter.Import_customer_misuse "AS10" diags)

let test_undeclared_neighbor () =
  (* AS10 writes rules but none for its peer AS20 *)
  let db =
    db_of "aut-num: AS10\nimport: from AS100 accept ANY\nexport: to AS100 announce AS10\n"
  in
  let diags = Linter.lint ~rels:(rels_fixture ()) db in
  Alcotest.(check bool) "undeclared neighbor" true (has Linter.Undeclared_neighbor diags);
  (* an AS-ANY rule suppresses the check *)
  let db2 =
    db_of "aut-num: AS10\nimport: from AS-ANY accept ANY\nexport: to AS-ANY announce ANY\n"
  in
  Alcotest.(check bool) "AS-ANY suppresses" false
    (has Linter.Undeclared_neighbor (Linter.lint ~rels:(rels_fixture ()) db2))

let test_lint_object_scoped () =
  let db = db_of "as-set: AS-EMPTY\n\nas-set: AS-ONE\nmembers: AS5\n" in
  let diags = Linter.lint_object db ~cls:"as-set" ~name:"AS-EMPTY" in
  Alcotest.(check bool) "scoped to object" true
    (List.for_all (fun (d : Linter.diagnostic) -> d.obj = "AS-EMPTY") diags);
  Alcotest.(check bool) "finds the problem" true (has Linter.Empty_set diags)

let test_severity_ordering () =
  let db =
    db_of "as-set: AS-X\nmembers: ANY\n\nas-set: AS-ONE\nmembers: AS5\n"
  in
  match Linter.lint db with
  | [] -> Alcotest.fail "expected diagnostics"
  | first :: _ ->
    Alcotest.(check string) "errors first" "error"
      (Linter.severity_to_string first.severity)

let test_dangling_maintainer () =
  (* only flagged when the dumps contain mntner objects at all *)
  let without_mntners = db_of "aut-num: AS1\nmnt-by: MNT-GONE\n" in
  Alcotest.(check bool) "silent without mntner objects" false
    (has Linter.Dangling_maintainer (Linter.lint without_mntners));
  let with_mntners =
    db_of
      "aut-num: AS1\nmnt-by: MNT-GONE\n\naut-num: AS2\nmnt-by: MNT-OK\n\nmntner: MNT-OK\nauth: PGPKEY-1\n"
  in
  let diags = Linter.lint with_mntners in
  Alcotest.(check bool) "dangling flagged" true (has_for Linter.Dangling_maintainer "AS1" diags);
  Alcotest.(check bool) "valid not flagged" false
    (has_for Linter.Dangling_maintainer "AS2" diags)

let test_lint_objects_templates () =
  let parsed =
    Rz_rpsl.Reader.parse_string
      "route: 10.0.0.0/8\norigin: AS1\norigin: AS2\nmnt-by: M\nsource: T\n\n\
       aut-num: AS9\nas-name: X\nmnt-by: M\nsource: T\n"
  in
  let diags = Linter.lint_objects parsed.objects in
  Alcotest.(check bool) "repeated origin is an error" true
    (List.exists
       (fun (d : Linter.diagnostic) ->
         d.check = Linter.Template_violation && d.severity = Linter.Error)
       diags);
  Alcotest.(check bool) "clean aut-num silent" false
    (List.exists (fun (d : Linter.diagnostic) -> d.obj = "AS9") diags)

let test_synthetic_world_lints () =
  (* the generated world's injected anomalies surface as diagnostics *)
  let topo =
    Rz_topology.Gen.generate
      { Rz_topology.Gen.default_params with n_tier1 = 3; n_mid = 20; n_stub = 60 }
  in
  let world = Rz_synthirr.Generate.generate topo in
  let db = Rz_irr.Db.of_dumps world.dumps in
  let diags = Linter.lint ~rels:topo.rels db in
  Alcotest.(check bool) "finds empty sets" true (has Linter.Empty_set diags);
  Alcotest.(check bool) "finds loops" true (has Linter.Set_loop diags);
  Alcotest.(check bool) "finds reserved members" true (has Linter.Reserved_word_member diags);
  Alcotest.(check bool) "finds export-self" true (has Linter.Export_self_misuse diags);
  Alcotest.(check bool) "finds undeclared neighbors" true (has Linter.Undeclared_neighbor diags)

(* ---------------- rewrite suggestions ---------------- *)

let test_rewrite_export_self () =
  let db =
    db_of
      "aut-num: AS10\nexport: to AS100 announce AS10\nimport: from AS100 accept ANY\n\n\
       as-set: AS10:AS-CUST\nmembers: AS10, AS2\n"
  in
  match Rz_lint.Rewrite.suggest ~rels:(rels_fixture ()) db 10 with
  | Some s ->
    Alcotest.(check int) "one change" 1 (List.length s.changes);
    let change = List.hd s.changes in
    Alcotest.(check bool) "replaces with cone set" true
      (Rz_util.Strings.split_on_string ~sep:"AS10:AS-CUST" change.after |> List.length > 1);
    Alcotest.(check bool) "rewritten object mentions the set" true
      (Rz_util.Strings.split_on_string ~sep:"AS10:AS-CUST" s.rewritten |> List.length > 1);
    (* the rewritten object still parses *)
    let reparsed = Rz_rpsl.Reader.parse_string s.rewritten in
    Alcotest.(check int) "reparses" 1 (List.length reparsed.objects);
    Alcotest.(check int) "no reader errors" 0 (List.length reparsed.errors)
  | None -> Alcotest.fail "expected a suggestion"

let test_rewrite_import_customer () =
  let db =
    db_of
      "aut-num: AS10\nimport: from AS2 accept AS2\nexport: to AS2 announce ANY\n\n\
       route-set: AS2:RS-ROUTES\nmembers: 192.0.2.0/24\n"
  in
  match Rz_lint.Rewrite.suggest ~rels:(rels_fixture ()) db 10 with
  | Some s ->
    let change = List.hd s.changes in
    Alcotest.(check bool) "uses the customer's route-set" true
      (Rz_util.Strings.split_on_string ~sep:"AS2:RS-ROUTES" change.after |> List.length > 1)
  | None -> Alcotest.fail "expected a suggestion"

let test_rewrite_nothing_to_do () =
  (* correct policies produce no suggestion *)
  let db =
    db_of
      "aut-num: AS10\nexport: to AS100 announce AS10:AS-CUST\nimport: from AS100 accept ANY\n\n\
       as-set: AS10:AS-CUST\nmembers: AS10, AS2\n"
  in
  Alcotest.(check bool) "no changes suggested" true
    (Rz_lint.Rewrite.suggest ~rels:(rels_fixture ()) db 10 = None);
  Alcotest.(check bool) "unknown AS" true
    (Rz_lint.Rewrite.suggest ~rels:(rels_fixture ()) db 999 = None)

let test_rewrite_stub_export_self_kept () =
  (* a stub announcing itself is CORRECT RPSL; no rewrite *)
  let db = db_of "aut-num: AS3\nexport: to AS2 announce AS3\nimport: from AS2 accept ANY\n" in
  Alcotest.(check bool) "stub untouched" true
    (Rz_lint.Rewrite.suggest ~rels:(rels_fixture ()) db 3 = None)

let suite =
  [ Alcotest.test_case "clean input quiet" `Quick test_clean_input_is_quiet;
    Alcotest.test_case "empty / singleton" `Quick test_empty_and_singleton_sets;
    Alcotest.test_case "loop / depth" `Quick test_loop_and_depth;
    Alcotest.test_case "reserved / invalid names" `Quick test_reserved_and_invalid_names;
    Alcotest.test_case "unknown members" `Quick test_unknown_members;
    Alcotest.test_case "zero rules / direction" `Quick test_zero_rules_and_direction;
    Alcotest.test_case "filter routes / route-set hint" `Quick test_filter_without_routes_and_route_set_hint;
    Alcotest.test_case "private asn" `Quick test_private_asn_leak;
    Alcotest.test_case "unreferenced sets" `Quick test_unreferenced_sets;
    Alcotest.test_case "export-self misuse" `Quick test_export_self_misuse;
    Alcotest.test_case "import-customer misuse" `Quick test_import_customer_misuse;
    Alcotest.test_case "undeclared neighbor" `Quick test_undeclared_neighbor;
    Alcotest.test_case "lint_object scoped" `Quick test_lint_object_scoped;
    Alcotest.test_case "severity ordering" `Quick test_severity_ordering;
    Alcotest.test_case "dangling maintainer" `Quick test_dangling_maintainer;
    Alcotest.test_case "template violations" `Quick test_lint_objects_templates;
    Alcotest.test_case "synthetic world lints" `Quick test_synthetic_world_lints;
    Alcotest.test_case "rewrite export-self" `Quick test_rewrite_export_self;
    Alcotest.test_case "rewrite import-customer" `Quick test_rewrite_import_customer;
    Alcotest.test_case "rewrite nothing to do" `Quick test_rewrite_nothing_to_do;
    Alcotest.test_case "rewrite keeps stub self" `Quick test_rewrite_stub_export_self_kept ]
