(* Tests for rz_bgp: route lines, path handling, table dumps. *)
module Route = Rz_bgp.Route
module Table_dump = Rz_bgp.Table_dump

let p = Rz_net.Prefix.of_string_exn

let test_make_and_line () =
  let r = Route.make (p "192.0.2.0/24") [ 3257; 1299; 6939 ] in
  Alcotest.(check string) "line" "192.0.2.0/24|3257 1299 6939" (Route.to_line r)

let test_line_roundtrip () =
  List.iter
    (fun line ->
      match Route.of_line line with
      | Ok r -> Alcotest.(check string) line line (Route.to_line r)
      | Error e -> Alcotest.fail e)
    [ "192.0.2.0/24|3257 1299 6939";
      "2001:db8::/32|1 2 3";
      "10.0.0.0/8|65000";
      "192.0.2.0/24|1 {2,3} 4" ]

let test_line_errors () =
  let bad s = Alcotest.(check bool) s true (Result.is_error (Route.of_line s)) in
  bad "192.0.2.0/24";
  bad "banana|1 2";
  bad "192.0.2.0/24|one two";
  bad "192.0.2.0/24|1 {2,x}"

let test_as_set_detection () =
  let plain = Route.make (p "10.0.0.0/8") [ 1; 2 ] in
  Alcotest.(check bool) "plain" false (Route.contains_as_set plain);
  match Route.of_line "10.0.0.0/8|1 {2,3}" with
  | Ok r -> Alcotest.(check bool) "with set" true (Route.contains_as_set r)
  | Error e -> Alcotest.fail e

let test_origin () =
  let r = Route.make (p "10.0.0.0/8") [ 1; 2; 3 ] in
  Alcotest.(check (option int)) "origin is last" (Some 3) (Route.origin r)

let test_dedup_path () =
  let r = Route.make (p "10.0.0.0/8") [ 1; 2; 2; 2; 3; 3 ] in
  Alcotest.(check (list int)) "prepending removed" [ 1; 2; 3 ] (Route.dedup_path r)

let test_single_as () =
  Alcotest.(check bool) "single" true (Route.is_single_as (Route.make (p "10.0.0.0/8") [ 5 ]));
  Alcotest.(check bool) "prepended single" true
    (Route.is_single_as (Route.make (p "10.0.0.0/8") [ 5; 5; 5 ]));
  Alcotest.(check bool) "multi" false (Route.is_single_as (Route.make (p "10.0.0.0/8") [ 5; 6 ]))

let test_table_dump_roundtrip () =
  let dump =
    { Table_dump.collector = "rrc00";
      routes =
        [ Route.make (p "192.0.2.0/24") [ 1; 2 ]; Route.make (p "2001:db8::/32") [ 3; 4 ] ] }
  in
  let text = Table_dump.to_string dump in
  match Table_dump.of_string ~collector:"rrc00" text with
  | Ok parsed ->
    Alcotest.(check int) "route count" 2 (List.length parsed.routes);
    Alcotest.(check bool) "routes equal" true
      (List.for_all2 Route.equal dump.routes parsed.routes)
  | Error e -> Alcotest.fail e

let test_table_dump_comments_blanks () =
  let text = "# header\n\n192.0.2.0/24|1 2\n   \n# trailing\n" in
  match Table_dump.of_string ~collector:"x" text with
  | Ok parsed -> Alcotest.(check int) "one route" 1 (List.length parsed.routes)
  | Error e -> Alcotest.fail e

let test_table_dump_strict_vs_lossy () =
  let text = "192.0.2.0/24|1 2\nbroken line\n198.51.100.0/24|3\n" in
  Alcotest.(check bool) "strict fails" true
    (Result.is_error (Table_dump.of_string ~collector:"x" text));
  let dump, dropped = Table_dump.of_string_lossy ~collector:"x" text in
  Alcotest.(check int) "lossy keeps 2" 2 (List.length dump.routes);
  Alcotest.(check int) "lossy drops 1" 1 dropped

let test_table_dump_save_load () =
  let dump =
    { Table_dump.collector = "rrc01"; routes = [ Route.make (p "10.0.0.0/8") [ 9; 8 ] ] }
  in
  let path = Filename.temp_file "dump" ".txt" in
  Table_dump.save dump path;
  (match Table_dump.load ~collector:"rrc01" path with
   | Ok loaded -> Alcotest.(check int) "loaded" 1 (List.length loaded.routes)
   | Error e -> Alcotest.fail e);
  Sys.remove path

let route_line_roundtrip =
  QCheck.Test.make ~name:"route line round-trips" ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 0 0xFFFFFF) (list_size (int_range 1 8) (int_range 1 100000))))
    (fun (addr24, path) ->
      let r = Route.make (Rz_net.Prefix.v4 (addr24 lsl 8) 24) path in
      match Route.of_line (Route.to_line r) with
      | Ok r2 -> Route.equal r r2
      | Error _ -> false)

let suite =
  [ Alcotest.test_case "make and line" `Quick test_make_and_line;
    Alcotest.test_case "line roundtrip" `Quick test_line_roundtrip;
    Alcotest.test_case "line errors" `Quick test_line_errors;
    Alcotest.test_case "as_set detection" `Quick test_as_set_detection;
    Alcotest.test_case "origin" `Quick test_origin;
    Alcotest.test_case "dedup path" `Quick test_dedup_path;
    Alcotest.test_case "single as" `Quick test_single_as;
    Alcotest.test_case "table dump roundtrip" `Quick test_table_dump_roundtrip;
    Alcotest.test_case "table dump comments" `Quick test_table_dump_comments_blanks;
    Alcotest.test_case "strict vs lossy" `Quick test_table_dump_strict_vs_lossy;
    Alcotest.test_case "table dump save/load" `Quick test_table_dump_save_load;
    QCheck_alcotest.to_alcotest route_line_roundtrip ]
