(* Unit tests for rz_verify.Aggregate on hand-built hop reports. *)
module Aggregate = Rz_verify.Aggregate
module Status = Rz_verify.Status
module Report = Rz_verify.Report

let p = Rz_net.Prefix.of_string_exn

let hop direction from_as to_as status items =
  { Report.direction; from_as; to_as; status; items; attrs = None }

let route_report prefix path hops =
  { Report.route = Rz_bgp.Route.make (p prefix) path; hops }

let test_counts_basics () =
  let c = Aggregate.zero_counts () in
  Aggregate.counts_add c Status.Verified;
  Aggregate.counts_add c Status.Verified;
  Aggregate.counts_add c (Status.Unrecorded Status.No_rules);
  Aggregate.counts_add c Status.Unverified;
  Aggregate.counts_add c (Status.Relaxed Status.Export_self);
  Aggregate.counts_add c (Status.Safelisted Status.Uphill);
  Aggregate.counts_add c (Status.Skipped Status.Community_filter);
  Alcotest.(check int) "total" 7 (Aggregate.counts_total c);
  Alcotest.(check (list (pair string int))) "classes"
    [ ("verified", 2); ("skipped", 1); ("unrecorded", 1); ("relaxed", 1);
      ("safelisted", 1); ("unverified", 1) ]
    (Aggregate.counts_classes c)

let test_per_as_attribution () =
  let agg = Aggregate.create () in
  (* one route 3 -> 2 -> 1 (origin 1): export by 1 verified, import by 2
     unverified, export by 2 unrecorded, import by 3 verified *)
  Aggregate.add_route_report agg
    (route_report "192.0.2.0/24" [ 3; 2; 1 ]
       [ hop `Export 1 2 Status.Verified [];
         hop `Import 1 2 Status.Unverified [];
         hop `Export 2 3 (Status.Unrecorded Status.No_rules) [ Report.Unrec Status.No_rules ];
         hop `Import 2 3 Status.Verified [] ]);
  Alcotest.(check int) "1 route" 1 (Aggregate.n_routes agg);
  Alcotest.(check int) "4 hops" 4 (Aggregate.n_hops agg);
  let per_as = Aggregate.per_as_list agg in
  Alcotest.(check int) "3 ases" 3 (List.length per_as);
  (* exports are attributed to from_as; imports to to_as *)
  let _, imports1, exports1 = List.find (fun (a, _, _) -> a = 1) per_as in
  Alcotest.(check int) "AS1 exports verified" 1 exports1.Aggregate.verified;
  Alcotest.(check int) "AS1 no imports" 0 (Aggregate.counts_total imports1);
  let _, imports2, exports2 = List.find (fun (a, _, _) -> a = 2) per_as in
  Alcotest.(check int) "AS2 import unverified" 1 imports2.Aggregate.unverified;
  Alcotest.(check int) "AS2 export unrecorded" 1 exports2.Aggregate.unrecorded;
  let _, imports3, _ = List.find (fun (a, _, _) -> a = 3) per_as in
  Alcotest.(check int) "AS3 import verified" 1 imports3.Aggregate.verified

let test_per_as_summary_pure () =
  let agg = Aggregate.create () in
  Aggregate.add_route_report agg
    (route_report "192.0.2.0/24" [ 2; 1 ]
       [ hop `Export 1 2 Status.Verified []; hop `Import 1 2 Status.Verified [] ]);
  let s = Aggregate.per_as_summary agg in
  Alcotest.(check int) "2 ases" 2 s.n_ases;
  Alcotest.(check int) "both single-status" 2 s.all_same_status;
  Alcotest.(check int) "both all-verified" 2 s.all_verified

let test_per_pair_summary () =
  let agg = Aggregate.create () in
  (* same directed pair twice with different import statuses -> mixed *)
  let add status =
    Aggregate.add_route_report agg
      (route_report "192.0.2.0/24" [ 2; 1 ]
         [ hop `Export 1 2 Status.Verified []; hop `Import 1 2 status [] ])
  in
  add Status.Verified;
  add Status.Unverified;
  let s = Aggregate.per_pair_summary agg in
  Alcotest.(check int) "2 pair-direction entries" 2 s.n_pairs;
  Alcotest.(check (float 1e-9)) "import pair mixed" 0.0 s.single_status_import;
  Alcotest.(check (float 1e-9)) "export pair single" 1.0 s.single_status_export;
  Alcotest.(check int) "one pair with unverified" 1 s.pairs_with_unverified

let test_unverified_peering_fraction () =
  let agg = Aggregate.create () in
  Aggregate.add_route_report agg
    (route_report "192.0.2.0/24" [ 2; 1 ]
       [ hop `Export 1 2 Status.Unverified [ Report.Match_remote_as_num 9 ];
         hop `Import 1 2 Status.Unverified [ Report.Match_filter ] ]);
  let s = Aggregate.per_pair_summary agg in
  (* one of the two unverified hops is peering-only *)
  Alcotest.(check (float 1e-9)) "half peering mismatch" 0.5 s.unverified_peering_mismatch

let test_per_route_summary () =
  let agg = Aggregate.create () in
  (* route A: pure verified; route B: two statuses; route C: three *)
  Aggregate.add_route_report agg
    (route_report "192.0.2.0/24" [ 2; 1 ]
       [ hop `Export 1 2 Status.Verified []; hop `Import 1 2 Status.Verified [] ]);
  Aggregate.add_route_report agg
    (route_report "198.51.100.0/24" [ 2; 1 ]
       [ hop `Export 1 2 Status.Verified []; hop `Import 1 2 Status.Unverified [] ]);
  Aggregate.add_route_report agg
    (route_report "203.0.113.0/24" [ 3; 2; 1 ]
       [ hop `Export 1 2 Status.Verified [];
         hop `Import 1 2 Status.Unverified [];
         hop `Export 2 3 (Status.Unrecorded Status.No_rules) [];
         hop `Import 2 3 Status.Verified [] ]);
  let s = Aggregate.per_route_summary agg in
  Alcotest.(check int) "3 routes" 3 s.n_routes;
  Alcotest.(check (float 1e-6)) "one single" (1. /. 3.) s.single_status;
  Alcotest.(check (float 1e-6)) "one two-status" (1. /. 3.) s.two_statuses;
  Alcotest.(check (float 1e-6)) "one three-status" (1. /. 3.) s.three_plus;
  Alcotest.(check (float 1e-6)) "single verified" (1. /. 3.) s.single_verified

let test_breakdowns () =
  let agg = Aggregate.create () in
  Aggregate.add_route_report agg
    (route_report "192.0.2.0/24" [ 3; 2; 1 ]
       [ hop `Export 1 2 (Status.Unrecorded (Status.No_aut_num 1)) [];
         hop `Import 1 2 (Status.Unrecorded Status.No_rules) [];
         hop `Export 2 3 (Status.Relaxed Status.Export_self) [];
         hop `Import 2 3 (Status.Safelisted Status.Uphill) [] ]);
  let u = Aggregate.unrec_breakdown agg in
  Alcotest.(check int) "no_aut_num AS" 1 u.ases_no_aut_num;
  Alcotest.(check int) "no_rules AS" 1 u.ases_no_rules;
  let sp = Aggregate.special_breakdown agg in
  Alcotest.(check int) "export-self AS" 1 sp.ases_export_self;
  Alcotest.(check int) "uphill AS" 1 sp.ases_uphill;
  Alcotest.(check int) "any special" 2 sp.ases_any_special

let test_unrecorded_attribution_direction () =
  (* the unrecorded AS is the subject: the exporter for exports, the
     importer for imports *)
  let agg = Aggregate.create () in
  Aggregate.add_route_report agg
    (route_report "192.0.2.0/24" [ 2; 1 ]
       [ hop `Export 1 2 (Status.Unrecorded (Status.No_aut_num 1)) [];
         hop `Import 1 2 (Status.Unrecorded (Status.No_aut_num 2)) [] ]);
  let u = Aggregate.unrec_breakdown agg in
  Alcotest.(check int) "both subjects flagged" 2 u.ases_no_aut_num

let suite =
  [ Alcotest.test_case "counts basics" `Quick test_counts_basics;
    Alcotest.test_case "per-AS attribution" `Quick test_per_as_attribution;
    Alcotest.test_case "per-AS summary" `Quick test_per_as_summary_pure;
    Alcotest.test_case "per-pair summary" `Quick test_per_pair_summary;
    Alcotest.test_case "unverified peering fraction" `Quick test_unverified_peering_fraction;
    Alcotest.test_case "per-route summary" `Quick test_per_route_summary;
    Alcotest.test_case "breakdowns" `Quick test_breakdowns;
    Alcotest.test_case "unrecorded attribution" `Quick test_unrecorded_attribution_direction ]
