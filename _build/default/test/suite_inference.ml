(* Tests for Rz_stats.Infer_rels and Rz_stats.Siblings — the paper's
   future-work analytics (relationship inference, sibling detection). *)
module Infer = Rz_stats.Infer_rels
module Siblings = Rz_stats.Siblings
module Rel_db = Rz_asrel.Rel_db

let db_of text = Rz_irr.Db.of_dumps [ ("TEST", text) ]

let test_infer_provider_customer () =
  (* AS1's view: accept ANY from AS10 and announce own routes -> provider *)
  let db =
    db_of
      "aut-num: AS1\nimport: from AS10 accept ANY\nexport: to AS10 announce AS1\n\n\
       aut-num: AS10\nimport: from AS1 accept AS1\nexport: to AS1 announce ANY\n"
  in
  let rels = Infer.infer db in
  Alcotest.(check bool) "AS10 provider of AS1" true
    (Rel_db.relationship rels 10 1 = Rel_db.A_provider_of_b)

let test_infer_one_sided () =
  (* only the customer side declared: still inferable *)
  let db = db_of "aut-num: AS1\nimport: from AS10 accept ANY\nexport: to AS10 announce AS1\n" in
  let rels = Infer.infer db in
  Alcotest.(check bool) "one-sided provider" true
    (Rel_db.relationship rels 10 1 = Rel_db.A_provider_of_b)

let test_infer_peer () =
  let db =
    db_of
      "aut-num: AS1\nimport: from AS2 accept AS2\nexport: to AS2 announce AS1\n\n\
       aut-num: AS2\nimport: from AS1 accept AS1\nexport: to AS1 announce AS2\n"
  in
  let rels = Infer.infer db in
  Alcotest.(check bool) "selective both ways = peer" true
    (Rel_db.relationship rels 1 2 = Rel_db.Peers)

let test_infer_open_policy_is_silent () =
  (* accept ANY and announce ANY carries no orientation signal *)
  let db = db_of "aut-num: AS1\nimport: from AS2 accept ANY\nexport: to AS2 announce ANY\n" in
  let rels = Infer.infer db in
  Alcotest.(check bool) "no relationship claimed" true
    (Rel_db.relationship rels 1 2 = Rel_db.Unknown)

let test_infer_conflict_falls_back_to_peer () =
  (* both claim the other is their provider: contradictory -> peer *)
  let db =
    db_of
      "aut-num: AS1\nimport: from AS2 accept ANY\nexport: to AS2 announce AS1\n\n\
       aut-num: AS2\nimport: from AS1 accept ANY\nexport: to AS1 announce AS2\n"
  in
  let rels = Infer.infer db in
  Alcotest.(check bool) "conflict -> peer" true (Rel_db.relationship rels 1 2 = Rel_db.Peers)

let test_inference_accuracy_on_synthetic_world () =
  (* end to end: infer from the generated RPSL, compare to ground truth *)
  let topo =
    Rz_topology.Gen.generate
      { Rz_topology.Gen.default_params with n_tier1 = 3; n_mid = 30; n_stub = 100 }
  in
  let world = Rz_synthirr.Generate.generate topo in
  let db = Rz_irr.Db.of_dumps world.dumps in
  let inferred = Infer.infer db in
  let acc = Infer.accuracy ~truth:topo.rels inferred in
  Alcotest.(check bool) "links inferred" true (acc.inferred > 50);
  Alcotest.(check bool) "most inferred links are real" true
    (float_of_int acc.checked /. float_of_int acc.inferred > 0.9);
  let precision = float_of_int acc.correct /. float_of_int (max 1 acc.checked) in
  Alcotest.(check bool)
    (Printf.sprintf "precision %.2f >= 0.8" precision)
    true (precision >= 0.8)

(* ---------------- siblings ---------------- *)

let test_sibling_clusters () =
  let db =
    db_of
      "aut-num: AS1\nmnt-by: MNT-ORG\n\n\
       aut-num: AS2\nmnt-by: MNT-ORG\n\n\
       aut-num: AS3\nmnt-by: MNT-OTHER\n\n\
       aut-num: AS4\nmnt-by: MNT-ORG\nmnt-by: MNT-BRIDGE\n\n\
       aut-num: AS5\nmnt-by: MNT-BRIDGE\n"
  in
  let clusters = Siblings.clusters db in
  Alcotest.(check int) "one cluster" 1 (List.length clusters);
  let c = List.hd clusters in
  (* the bridge maintainer links AS5 into the MNT-ORG family *)
  Alcotest.(check (list int)) "members" [ 1; 2; 4; 5 ] c.asns;
  Alcotest.(check bool) "maintainers recorded" true (List.mem "MNT-ORG" c.maintainers);
  Alcotest.(check (list int)) "siblings_of" [ 2; 4; 5 ] (Siblings.siblings_of db 1);
  Alcotest.(check (list int)) "loner has none" [] (Siblings.siblings_of db 3)

let test_sibling_no_clusters () =
  let db = db_of "aut-num: AS1\nmnt-by: MNT-A\n\naut-num: AS2\nmnt-by: MNT-B\n" in
  Alcotest.(check int) "no clusters" 0 (List.length (Siblings.clusters db))

let suite =
  [ Alcotest.test_case "infer provider/customer" `Quick test_infer_provider_customer;
    Alcotest.test_case "infer one-sided" `Quick test_infer_one_sided;
    Alcotest.test_case "infer peer" `Quick test_infer_peer;
    Alcotest.test_case "open policy silent" `Quick test_infer_open_policy_is_silent;
    Alcotest.test_case "conflict -> peer" `Quick test_infer_conflict_falls_back_to_peer;
    Alcotest.test_case "accuracy on synthetic world" `Quick test_inference_accuracy_on_synthetic_world;
    Alcotest.test_case "sibling clusters" `Quick test_sibling_clusters;
    Alcotest.test_case "sibling no clusters" `Quick test_sibling_no_clusters ]
