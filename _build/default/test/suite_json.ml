(* Tests for rz_json: serialization, parsing, round-trips. *)
open Rz_json

let json = Alcotest.testable (fun fmt j -> Format.pp_print_string fmt (Json.to_string j)) Json.equal

let test_to_string_scalars () =
  Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
  Alcotest.(check string) "true" "true" (Json.to_string (Json.Bool true));
  Alcotest.(check string) "int" "42" (Json.to_string (Json.Int 42));
  Alcotest.(check string) "negative" "-7" (Json.to_string (Json.Int (-7)));
  Alcotest.(check string) "string" "\"hi\"" (Json.to_string (Json.String "hi"))

let test_string_escapes () =
  Alcotest.(check string) "escapes" "\"a\\\"b\\\\c\\nd\\te\""
    (Json.to_string (Json.String "a\"b\\c\nd\te"));
  Alcotest.(check string) "control char" "\"\\u0001\""
    (Json.to_string (Json.String "\001"))

let test_compound () =
  let doc = Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.Int 2 ]); ("n", Json.Null) ] in
  Alcotest.(check string) "compact" "{\"xs\":[1,2],\"n\":null}" (Json.to_string doc)

let test_pretty_roundtrip () =
  let doc =
    Json.Obj
      [ ("name", Json.String "AS-HANABI");
        ("members", Json.List [ Json.Int 38639; Json.String "nested" ]);
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
        ("pi", Json.Float 3.5) ]
  in
  let pretty = Json.to_string ~indent:2 doc in
  match Json.of_string pretty with
  | Ok parsed -> Alcotest.check json "pretty round-trips" doc parsed
  | Error e -> Alcotest.fail e

let test_parse_basics () =
  (match Json.of_string "  [1, 2.5, \"x\", null, true, false] " with
   | Ok (Json.List [ Json.Int 1; Json.Float f; Json.String "x"; Json.Null; Json.Bool true; Json.Bool false ]) ->
     Alcotest.(check (float 1e-9)) "float" 2.5 f
   | Ok _ -> Alcotest.fail "wrong structure"
   | Error e -> Alcotest.fail e)

let test_parse_nested_objects () =
  match Json.of_string {|{"a": {"b": [{"c": 1}]}}|} with
  | Ok doc ->
    let inner =
      Option.bind (Json.member "a" doc) (Json.member "b")
    in
    (match inner with
     | Some (Json.List [ item ]) ->
       Alcotest.check json "nested" (Json.Obj [ ("c", Json.Int 1) ]) item
     | _ -> Alcotest.fail "bad nesting")
  | Error e -> Alcotest.fail e

let test_parse_unicode_escape () =
  match Json.of_string "\"\\u0041\\u00e9\"" with
  | Ok (Json.String s) -> Alcotest.(check string) "utf8" "A\xc3\xa9" s
  | _ -> Alcotest.fail "expected string"

let test_parse_errors () =
  let is_error s = Result.is_error (Json.of_string s) in
  Alcotest.(check bool) "trailing garbage" true (is_error "1 2");
  Alcotest.(check bool) "unterminated string" true (is_error "\"abc");
  Alcotest.(check bool) "unterminated list" true (is_error "[1, 2");
  Alcotest.(check bool) "bad literal" true (is_error "trueX");
  Alcotest.(check bool) "lone brace" true (is_error "{")

let test_member_and_to_list () =
  let doc = Json.Obj [ ("k", Json.Int 3) ] in
  Alcotest.(check bool) "member found" true (Json.member "k" doc = Some (Json.Int 3));
  Alcotest.(check bool) "member missing" true (Json.member "z" doc = None);
  Alcotest.(check bool) "member on non-obj" true (Json.member "k" (Json.Int 1) = None);
  Alcotest.(check int) "to_list" 2 (List.length (Json.to_list (Json.List [ Json.Null; Json.Null ])))

let test_int_float_equal () =
  Alcotest.(check bool) "1 = 1.0" true (Json.equal (Json.Int 1) (Json.Float 1.0))

(* Random JSON generator for round-trip property. *)
let rec gen_json depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [ return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
        map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 10)) ]
  else
    frequency
      [ (2, gen_json 0);
        (1, map (fun xs -> Json.List xs) (list_size (int_range 0 4) (gen_json (depth - 1))));
        ( 1,
          map
            (fun kvs ->
              (* distinct keys, or structural equality after re-parse breaks *)
              let kvs =
                List.mapi (fun i (k, v) -> (Printf.sprintf "%s_%d" k i, v)) kvs
              in
              Json.Obj kvs)
            (list_size (int_range 0 4)
               (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 6))
                  (gen_json (depth - 1)))) ) ]

let roundtrip_prop =
  QCheck.Test.make ~name:"to_string |> of_string round-trips" ~count:300
    (QCheck.make (gen_json 3))
    (fun doc ->
      match Json.of_string (Json.to_string doc) with
      | Ok parsed -> Json.equal doc parsed
      | Error _ -> false)

let suite =
  [ Alcotest.test_case "scalars" `Quick test_to_string_scalars;
    Alcotest.test_case "string escapes" `Quick test_string_escapes;
    Alcotest.test_case "compound" `Quick test_compound;
    Alcotest.test_case "pretty round-trip" `Quick test_pretty_roundtrip;
    Alcotest.test_case "parse basics" `Quick test_parse_basics;
    Alcotest.test_case "parse nested" `Quick test_parse_nested_objects;
    Alcotest.test_case "unicode escape" `Quick test_parse_unicode_escape;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "member / to_list" `Quick test_member_and_to_list;
    Alcotest.test_case "int/float equality" `Quick test_int_float_equal;
    QCheck_alcotest.to_alcotest roundtrip_prop ]
