(* Tests for Rz_stats.Classify and Rz_stats.Evolution — the paper's
   future-work tooling. *)
module Classify = Rz_stats.Classify
module Evolution = Rz_stats.Evolution
module Rel_db = Rz_asrel.Rel_db

let db_of text = Rz_irr.Db.of_dumps [ ("TEST", text) ]

let classify_one ?rels db asn =
  match Rz_irr.Db.find_aut_num db asn with
  | Some an -> Classify.classify_aut_num ?rels an
  | None -> Alcotest.fail "aut-num missing"

let test_silent () =
  let db = db_of "aut-num: AS1\n" in
  Alcotest.(check string) "silent" "silent"
    (Classify.style_to_string (classify_one db 1).style)

let test_open_policy () =
  let db = db_of "aut-num: AS1\nimport: from AS-ANY accept ANY\nexport: to AS-ANY announce ANY\n" in
  let p = classify_one db 1 in
  Alcotest.(check string) "open" "open-policy" (Classify.style_to_string p.style);
  Alcotest.(check int) "2 rules" 2 p.n_rules

let test_simple () =
  let db =
    db_of "aut-num: AS1\nimport: from AS2 accept AS-X\nexport: to AS2 announce AS1\n\nas-set: AS-X\nmembers: AS2\n"
  in
  let p = classify_one db 1 in
  Alcotest.(check string) "simple" "simple" (Classify.style_to_string p.style);
  Alcotest.(check bool) "uses sets" true p.uses_sets;
  Alcotest.(check int) "declared neighbors" 1 p.n_neighbors_declared

let test_expressive () =
  let db = db_of "aut-num: AS1\nimport: from AS2 accept <^AS2+$>\n" in
  Alcotest.(check string) "expressive" "expressive"
    (Classify.style_to_string (classify_one db 1).style)

let test_provider_only () =
  let rels = Rel_db.create () in
  Rel_db.add_p2c rels ~provider:10 ~customer:1;
  Rel_db.add_p2c rels ~provider:1 ~customer:5;
  let db = db_of "aut-num: AS1\nimport: from AS10 accept ANY\nexport: to AS10 announce AS1\n" in
  Alcotest.(check string) "provider-only" "provider-only"
    (Classify.style_to_string (classify_one ~rels db 1).style);
  (* without relationships we cannot tell: falls back to simple *)
  Alcotest.(check string) "without rels" "simple"
    (Classify.style_to_string (classify_one db 1).style)

let test_classify_all_and_histogram () =
  let db = db_of "aut-num: AS1\nimport: from AS-ANY accept ANY\nexport: to AS-ANY announce ANY\n" in
  let profiles = Classify.classify_all ~observed:[ 1; 2 ] db in
  Alcotest.(check int) "two profiles" 2 (List.length profiles);
  let hist = Classify.histogram profiles in
  Alcotest.(check int) "one unregistered" 1 (List.assoc Classify.Unregistered hist);
  Alcotest.(check int) "one open" 1 (List.assoc Classify.Open_policy hist)

let test_classifier_recovers_generator_personas () =
  (* ground-truth check: the classifier's categories line up with the
     synthetic generator's personas *)
  let topo =
    Rz_topology.Gen.generate
      { Rz_topology.Gen.default_params with n_tier1 = 3; n_mid = 25; n_stub = 80 }
  in
  let world = Rz_synthirr.Generate.generate topo in
  let db = Rz_irr.Db.of_dumps world.dumps in
  let agree = ref 0 and total = ref 0 in
  Hashtbl.iter
    (fun asn (profile : Rz_synthirr.Generate.profile) ->
      let expected =
        match profile.persona with
        | Rz_synthirr.Generate.No_aut_num -> Some Classify.Unregistered
        | Rz_synthirr.Generate.No_rules -> Some Classify.Silent
        | Rz_synthirr.Generate.Any_any -> Some Classify.Open_policy
        | Rz_synthirr.Generate.Complex -> Some Classify.Expressive
        | Rz_synthirr.Generate.Regular | Rz_synthirr.Generate.Only_provider -> None
      in
      match expected with
      | None -> ()
      | Some style ->
        incr total;
        let got = List.hd (Classify.classify_all ~rels:topo.rels ~observed:[ asn ] db) in
        if got.style = style then incr agree)
    world.profiles;
  Alcotest.(check bool) "sampled personas" true (!total > 30);
  let accuracy = float_of_int !agree /. float_of_int !total in
  Alcotest.(check bool)
    (Printf.sprintf "accuracy %.2f >= 0.9" accuracy)
    true (accuracy >= 0.9)

(* ---------------- evolution ---------------- *)

let ir_of text =
  let ir = Rz_ir.Ir.create () in
  ignore (Rz_ir.Lower.add_dump ir ~source:"SNAP" text);
  ir

let test_diff_empty () =
  let snapshot = ir_of "aut-num: AS1\nimport: from AS2 accept ANY\n" in
  let d = Evolution.diff ~before:snapshot ~after:snapshot in
  Alcotest.(check bool) "identical snapshots" true (Evolution.is_empty d);
  Alcotest.(check string) "summary" "no changes between snapshots" (Evolution.summary d)

let test_diff_objects () =
  let before =
    ir_of
      "aut-num: AS1\nimport: from AS2 accept ANY\n\naut-num: AS2\n\n\
       as-set: AS-X\nmembers: AS1\n\nroute: 192.0.2.0/24\norigin: AS1\n"
  in
  let after =
    ir_of
      "aut-num: AS1\nimport: from AS2 accept ANY\nexport: to AS2 announce AS1\n\n\
       aut-num: AS3\n\n\
       as-set: AS-X\nmembers: AS1, AS9\n\nas-set: AS-NEW\nmembers: AS3\n\n\
       route: 198.51.100.0/24\norigin: AS1\n"
  in
  let d = Evolution.diff ~before ~after in
  Alcotest.(check (list int)) "added aut-num" [ 3 ] d.aut_nums_added;
  Alcotest.(check (list int)) "removed aut-num" [ 2 ] d.aut_nums_removed;
  Alcotest.(check int) "AS1 policy changed" 1 (List.length d.rules_changed);
  (let change = List.hd d.rules_changed in
   Alcotest.(check int) "rules before" 1 change.before_rules;
   Alcotest.(check int) "rules after" 2 change.after_rules);
  Alcotest.(check (list string)) "as-set added" [ "AS-NEW" ] d.as_sets_added;
  Alcotest.(check (list string)) "as-set changed" [ "AS-X" ] d.as_sets_changed;
  Alcotest.(check int) "route added" 1 d.routes_added;
  Alcotest.(check int) "route removed" 1 d.routes_removed;
  Alcotest.(check bool) "not empty" false (Evolution.is_empty d)

let test_diff_across_generated_snapshots () =
  (* two generator seeds = two "scrapes"; the diff machinery must cope
     with realistic volumes *)
  let topo =
    Rz_topology.Gen.generate
      { Rz_topology.Gen.default_params with n_tier1 = 3; n_mid = 15; n_stub = 50 }
  in
  let snap config_seed =
    let world =
      Rz_synthirr.Generate.generate
        ~config:{ Rz_synthirr.Config.default with seed = config_seed } topo
    in
    let ir = Rz_ir.Ir.create () in
    List.iter (fun (src, text) -> ignore (Rz_ir.Lower.add_dump ir ~source:src text)) world.dumps;
    ir
  in
  let d = Evolution.diff ~before:(snap 1) ~after:(snap 2) in
  Alcotest.(check bool) "detects churn" false (Evolution.is_empty d);
  Alcotest.(check bool) "summary is non-trivial" true (String.length (Evolution.summary d) > 20)

let suite =
  [ Alcotest.test_case "silent" `Quick test_silent;
    Alcotest.test_case "open policy" `Quick test_open_policy;
    Alcotest.test_case "simple" `Quick test_simple;
    Alcotest.test_case "expressive" `Quick test_expressive;
    Alcotest.test_case "provider-only" `Quick test_provider_only;
    Alcotest.test_case "classify_all / histogram" `Quick test_classify_all_and_histogram;
    Alcotest.test_case "recovers generator personas" `Quick test_classifier_recovers_generator_personas;
    Alcotest.test_case "diff: empty" `Quick test_diff_empty;
    Alcotest.test_case "diff: objects" `Quick test_diff_objects;
    Alcotest.test_case "diff: generated snapshots" `Quick test_diff_across_generated_snapshots ]
