test/suite_bgp.ml: Alcotest Filename List QCheck QCheck_alcotest Result Rz_bgp Rz_net Sys
