test/suite_rpsl.ml: Alcotest Attr List Obj Option QCheck QCheck_alcotest Reader Rz_rpsl Set_name String Template
