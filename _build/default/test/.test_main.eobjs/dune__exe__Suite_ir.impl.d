test/suite_ir.ml: Alcotest List Rz_ir Rz_json Rz_net Rz_policy
