test/suite_routegen.ml: Alcotest Array Hashtbl Lazy List Printf Rz_asrel Rz_bgp Rz_net Rz_routegen Rz_topology
