test/suite_lint.ml: Alcotest List Rz_asrel Rz_irr Rz_lint Rz_rpsl Rz_synthirr Rz_topology Rz_util
