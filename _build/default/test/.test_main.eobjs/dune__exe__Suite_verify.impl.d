test/suite_verify.ml: Alcotest List Rz_asrel Rz_bgp Rz_irr Rz_net Rz_util Rz_verify String
