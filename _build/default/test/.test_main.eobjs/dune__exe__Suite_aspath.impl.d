test/suite_aspath.ml: Alcotest Array List Printf QCheck QCheck_alcotest Regex_ast Regex_match Regex_nfa Regex_parse Result Rz_aspath String
