test/suite_asrel.ml: Alcotest Filename List Result Rz_asrel Sys
