test/suite_net.ml: Afi Alcotest Asn Ipaddr List Martian Option Prefix Prefix_agg Prefix_trie QCheck QCheck_alcotest Range_op Result Rz_net Rz_util
