test/suite_stats.ml: Alcotest Lazy List Rz_irr Rz_policy Rz_stats
