test/suite_property.ml: Alcotest Array Filename Hashtbl Lazy List Printf QCheck QCheck_alcotest Rpslyzer Rz_bgp Rz_ir Rz_irr Rz_net Rz_policy Rz_rpsl Rz_synthirr Rz_topology Rz_verify String Sys
