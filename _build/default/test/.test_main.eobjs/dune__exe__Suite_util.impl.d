test/suite_util.ml: Alcotest Array Fun List QCheck QCheck_alcotest Rz_util Splitmix Stats_util String Strings Table
