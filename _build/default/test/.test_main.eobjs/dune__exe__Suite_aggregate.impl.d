test/suite_aggregate.ml: Alcotest List Rz_bgp Rz_net Rz_verify
