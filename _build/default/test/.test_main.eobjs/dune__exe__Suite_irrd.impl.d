test/suite_irrd.ml: Alcotest Lazy List Rz_irr Rz_util String
