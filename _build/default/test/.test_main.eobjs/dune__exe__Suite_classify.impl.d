test/suite_classify.ml: Alcotest Hashtbl List Printf Rz_asrel Rz_ir Rz_irr Rz_stats Rz_synthirr Rz_topology String
