test/suite_pipeline.ml: Alcotest Hashtbl Lazy List Result Rpslyzer Rz_bgp Rz_ir Rz_irr Rz_json Rz_stats Rz_topology Rz_util Rz_verify
