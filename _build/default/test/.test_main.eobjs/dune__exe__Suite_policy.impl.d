test/suite_policy.ml: Alcotest Lexer List Parser Result Rz_net Rz_policy String
