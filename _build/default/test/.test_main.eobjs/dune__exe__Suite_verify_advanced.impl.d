test/suite_verify_advanced.ml: Alcotest List Printf Rz_asrel Rz_bgp Rz_irr Rz_net Rz_policy Rz_verify
