test/suite_synthirr.ml: Alcotest Array Hashtbl Lazy List Printf Rz_asrel Rz_ir Rz_irr Rz_policy Rz_rpsl Rz_synthirr Rz_topology
