test/suite_topology.ml: Alcotest Array Hashtbl List Printf Queue Rz_asrel Rz_net Rz_topology
