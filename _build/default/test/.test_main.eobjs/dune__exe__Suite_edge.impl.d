test/suite_edge.ml: Alcotest Array List Result Rpslyzer Rz_asrel Rz_bgp Rz_irr Rz_net Rz_policy Rz_topology Rz_verify
