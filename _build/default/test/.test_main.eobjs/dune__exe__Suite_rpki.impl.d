test/suite_rpki.ml: Alcotest Array Lazy List Printf Rz_bgp Rz_net Rz_routegen Rz_rpki Rz_topology
