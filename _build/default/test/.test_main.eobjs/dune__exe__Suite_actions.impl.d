test/suite_actions.ml: Alcotest Printf Result Rz_policy String
