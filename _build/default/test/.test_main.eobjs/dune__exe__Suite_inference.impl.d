test/suite_inference.ml: Alcotest List Printf Rz_asrel Rz_irr Rz_stats Rz_synthirr Rz_topology
