test/suite_json.ml: Alcotest Format Json List Option Printf QCheck QCheck_alcotest Result Rz_json
