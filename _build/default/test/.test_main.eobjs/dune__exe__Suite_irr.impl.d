test/suite_irr.ml: Alcotest Buffer List Printf QCheck QCheck_alcotest Rz_irr Rz_net Rz_synthirr Rz_util
