(* Tests for rz_rpki (ROV + ASPA) and the anomaly injection workload. *)
module Roa = Rz_rpki.Roa
module Aspa = Rz_rpki.Aspa
module Anomaly = Rz_routegen.Anomaly
module Gen = Rz_topology.Gen

let p = Rz_net.Prefix.of_string_exn

(* ---------------- ROV ---------------- *)

let roa_table () =
  let t = Roa.create () in
  Roa.add t { Roa.prefix = p "192.0.2.0/24"; max_length = 24; origin = 65001 };
  Roa.add t { Roa.prefix = p "198.51.0.0/16"; max_length = 20; origin = 65002 };
  t

let check_validity name expected got =
  Alcotest.(check string) name (Roa.validity_to_string expected) (Roa.validity_to_string got)

let test_rov_valid () =
  let t = roa_table () in
  check_validity "exact match" Roa.Valid (Roa.validate t (p "192.0.2.0/24") 65001);
  check_validity "within maxLength" Roa.Valid (Roa.validate t (p "198.51.16.0/20") 65002)

let test_rov_invalid () =
  let t = roa_table () in
  check_validity "wrong origin" Roa.Invalid (Roa.validate t (p "192.0.2.0/24") 64999);
  check_validity "too specific" Roa.Invalid (Roa.validate t (p "198.51.100.0/24") 65002);
  check_validity "hijacked subprefix" Roa.Invalid (Roa.validate t (p "192.0.2.128/25") 64999)

let test_rov_not_found () =
  let t = roa_table () in
  check_validity "uncovered space" Roa.Not_found (Roa.validate t (p "203.0.113.0/24") 65001)

let test_rov_competing_roas () =
  (* two ROAs for the same prefix: any match validates *)
  let t = roa_table () in
  Roa.add t { Roa.prefix = p "192.0.2.0/24"; max_length = 24; origin = 64999 };
  check_validity "either origin valid" Roa.Valid (Roa.validate t (p "192.0.2.0/24") 64999);
  Alcotest.(check int) "size" 3 (Roa.size t)

let small_topo =
  lazy (Gen.generate { Gen.default_params with n_tier1 = 3; n_mid = 20; n_stub = 60 })

let test_rov_of_topology () =
  let topo = Lazy.force small_topo in
  let full = Roa.of_topology ~adoption:1.0 topo in
  let none = Roa.of_topology ~adoption:0.0 topo in
  Alcotest.(check int) "no adoption -> empty" 0 (Roa.size none);
  Alcotest.(check bool) "full adoption covers" true (Roa.size full > 100);
  (* ground truth validates *)
  let asn = topo.ases.(10) in
  List.iter
    (fun prefix ->
      check_validity "own announcement valid" Roa.Valid (Roa.validate full prefix asn);
      check_validity "foreign origin invalid" Roa.Invalid (Roa.validate full prefix (asn + 1)))
    (Gen.prefixes_of topo asn)

(* ---------------- ASPA ---------------- *)

(* topology: 1 -- 2 tier1 peers; 1 > 3, 2 > 4 (providers); 3 > 5, 4 > 6 *)
let aspa_full () =
  let t = Aspa.create () in
  Aspa.attest t ~customer:3 ~providers:[ 1 ];
  Aspa.attest t ~customer:4 ~providers:[ 2 ];
  Aspa.attest t ~customer:5 ~providers:[ 3 ];
  Aspa.attest t ~customer:6 ~providers:[ 4 ];
  t

let check_aspa name expected got =
  Alcotest.(check string) name (Aspa.result_to_string expected) (Aspa.result_to_string got)

let test_aspa_valid_up_down () =
  let t = aspa_full () in
  (* wire order collector-side first: 6 4 2 | 1 3 5 reversed = origin 5 *)
  check_aspa "valley-free across apex" Aspa.Valid
    (Aspa.verify_path t [| 6; 4; 2; 1; 3; 5 |]);
  check_aspa "pure uphill" Aspa.Valid (Aspa.verify_path t [| 1; 3; 5 |]);
  check_aspa "single AS" Aspa.Valid (Aspa.verify_path t [| 5 |])

let test_aspa_single_suspect_pair_is_unknown () =
  let t = aspa_full () in
  (* origin 6 climbs to 4 (attested), 4-3 has provably-no-authorization in
     both directions — but a single such pair is indistinguishable from a
     lateral peer link at the apex, so the draft (and we) stay Unknown:
     the hop after it (3 -> 1) cannot be proven to climb. *)
  check_aspa "one suspect pair tolerated as apex" Aspa.Unknown
    (Aspa.verify_path t [| 1; 3; 4; 6 |])

let test_aspa_invalid_deep_leak () =
  let t = aspa_full () in
  (* two provably-unauthorized pairs far apart force K + L < N:
     path origin 5, up to 3 (ok), fake hop 3 -> 6 (3 attests [1): NP up;
     6 attests [4]: NP down), then 6 -> 4 up (P), then 4 -> 2 up...
     wire order: [2; 4; 6; 3; 5] -> a = [5;3;6;4;2]:
       pair(5,3)=P up; pair(3,6): up NP; -> K=2
       from top: pair(4,2): down = is 4 provider of 2? 2 no ASPA ->
       plausible; pair(6,4): down = is 6 a provider of 4? 4 attests [2] ->
       NP -> L=2. K+L=4 < N=5 -> Invalid *)
  check_aspa "valley deep in the path" Aspa.Invalid
    (Aspa.verify_path t [| 2; 4; 6; 3; 5 |])

let test_aspa_unknown_without_attestations () =
  let t = Aspa.create () in
  Aspa.attest t ~customer:5 ~providers:[ 3 ];
  (* only one attestation: the rest of the path is unverifiable *)
  check_aspa "partial adoption" Aspa.Unknown (Aspa.verify_path t [| 6; 4; 2; 1; 3; 5 |])

let test_aspa_authorized () =
  let t = aspa_full () in
  Alcotest.(check bool) "provider" true (Aspa.authorized t ~customer:3 ~provider:1 = Aspa.Provider);
  Alcotest.(check bool) "not provider" true
    (Aspa.authorized t ~customer:3 ~provider:2 = Aspa.Not_provider);
  Alcotest.(check bool) "no attestation" true
    (Aspa.authorized t ~customer:1 ~provider:2 = Aspa.No_attestation);
  Alcotest.(check bool) "has_aspa" true (Aspa.has_aspa t 3);
  Alcotest.(check int) "size" 4 (Aspa.size t)

let test_aspa_of_topology_validates_real_routes () =
  let topo = Lazy.force small_topo in
  let aspa = Aspa.of_topology ~adoption:1.0 topo in
  (* real collector routes must never be Invalid under full adoption *)
  let peers = Rz_routegen.Propagate.default_collector_peers topo ~n:3 in
  let dump = Rz_routegen.Propagate.collector_dump topo ~collector:"t" ~peers in
  List.iter
    (fun (r : Rz_bgp.Route.t) ->
      let path = Array.of_list (Rz_bgp.Route.dedup_path r) in
      match Aspa.verify_path aspa path with
      | Aspa.Invalid ->
        Alcotest.failf "legitimate route flagged invalid: %s" (Rz_bgp.Route.to_line r)
      | _ -> ())
    dump.routes

(* ---------------- anomalies ---------------- *)

let test_inject_prefix_hijack () =
  let topo = Lazy.force small_topo in
  let observer = topo.ases.(0) in
  let events = Anomaly.inject topo ~observer ~n:20 Anomaly.Prefix_hijack in
  Alcotest.(check bool) "events produced" true (List.length events > 5);
  List.iter
    (fun (e : Anomaly.event) ->
      (* the observed origin is the attacker, but the prefix belongs to
         the victim *)
      Alcotest.(check (option int)) "origin is attacker" (Some e.attacker)
        (Rz_bgp.Route.origin e.route);
      Alcotest.(check bool) "prefix is the victim's" true
        (List.exists (Rz_net.Prefix.equal e.prefix) (Gen.prefixes_of topo e.victim)))
    events

let test_inject_forged_origin () =
  let topo = Lazy.force small_topo in
  let observer = topo.ases.(0) in
  let events = Anomaly.inject topo ~observer ~n:20 Anomaly.Forged_origin in
  Alcotest.(check bool) "events produced" true (List.length events > 5);
  List.iter
    (fun (e : Anomaly.event) ->
      Alcotest.(check (option int)) "forged origin is the victim" (Some e.victim)
        (Rz_bgp.Route.origin e.route);
      (* the attacker sits adjacent to the forged origin *)
      let path = Rz_bgp.Route.dedup_path e.route in
      let rec last_two = function
        | [ a; b ] -> (a, b)
        | _ :: rest -> last_two rest
        | [] -> Alcotest.fail "path too short"
      in
      let penultimate, last = last_two path in
      Alcotest.(check int) "attacker before origin" e.attacker penultimate;
      Alcotest.(check int) "victim last" e.victim last)
    events

let test_inject_route_leak () =
  let topo = Lazy.force small_topo in
  let observer = topo.ases.(0) in
  let events = Anomaly.inject topo ~observer ~n:20 Anomaly.Route_leak in
  Alcotest.(check bool) "events produced" true (List.length events > 0);
  List.iter
    (fun (e : Anomaly.event) ->
      let path = Rz_bgp.Route.dedup_path e.route in
      Alcotest.(check bool) "attacker on path" true (List.mem e.attacker path);
      Alcotest.(check (option int)) "victim is origin" (Some e.victim)
        (Rz_bgp.Route.origin e.route))
    events

let test_rov_catches_hijacks () =
  let topo = Lazy.force small_topo in
  let observer = topo.ases.(0) in
  let roa = Roa.of_topology ~adoption:1.0 topo in
  let events = Anomaly.inject topo ~observer ~n:20 Anomaly.Prefix_hijack in
  List.iter
    (fun (e : Anomaly.event) ->
      match Rz_bgp.Route.origin e.route with
      | Some origin ->
        check_validity "hijack invalid under full ROV" Roa.Invalid
          (Roa.validate roa e.prefix origin)
      | None -> Alcotest.fail "no origin")
    events

let test_rov_misses_forged_origin () =
  (* the known ROV blind spot: the forged origin IS the authorized one *)
  let topo = Lazy.force small_topo in
  let observer = topo.ases.(0) in
  let roa = Roa.of_topology ~adoption:1.0 topo in
  let events = Anomaly.inject topo ~observer ~n:10 Anomaly.Forged_origin in
  List.iter
    (fun (e : Anomaly.event) ->
      match Rz_bgp.Route.origin e.route with
      | Some origin ->
        check_validity "forged origin evades ROV" Roa.Valid (Roa.validate roa e.prefix origin)
      | None -> Alcotest.fail "no origin")
    events

let test_aspa_catches_leaks () =
  let topo = Lazy.force small_topo in
  let observer = topo.ases.(0) in
  let aspa = Aspa.of_topology ~adoption:1.0 topo in
  let events = Anomaly.inject topo ~observer ~n:20 Anomaly.Route_leak in
  let detected =
    List.length
      (List.filter
         (fun (e : Anomaly.event) ->
           Aspa.verify_path aspa (Array.of_list (Rz_bgp.Route.dedup_path e.route))
           = Aspa.Invalid)
         events)
  in
  Alcotest.(check bool)
    (Printf.sprintf "ASPA detects most leaks (%d/%d)" detected (List.length events))
    true
    (List.length events = 0 || float_of_int detected /. float_of_int (List.length events) > 0.5)

let suite =
  [ Alcotest.test_case "rov valid" `Quick test_rov_valid;
    Alcotest.test_case "rov invalid" `Quick test_rov_invalid;
    Alcotest.test_case "rov not-found" `Quick test_rov_not_found;
    Alcotest.test_case "rov competing roas" `Quick test_rov_competing_roas;
    Alcotest.test_case "rov from topology" `Quick test_rov_of_topology;
    Alcotest.test_case "aspa valid paths" `Quick test_aspa_valid_up_down;
    Alcotest.test_case "aspa apex ambiguity" `Quick test_aspa_single_suspect_pair_is_unknown;
    Alcotest.test_case "aspa deep valley" `Quick test_aspa_invalid_deep_leak;
    Alcotest.test_case "aspa partial adoption" `Quick test_aspa_unknown_without_attestations;
    Alcotest.test_case "aspa authorized" `Quick test_aspa_authorized;
    Alcotest.test_case "aspa no false invalids" `Quick test_aspa_of_topology_validates_real_routes;
    Alcotest.test_case "inject prefix hijack" `Quick test_inject_prefix_hijack;
    Alcotest.test_case "inject forged origin" `Quick test_inject_forged_origin;
    Alcotest.test_case "inject route leak" `Quick test_inject_route_leak;
    Alcotest.test_case "rov catches hijacks" `Quick test_rov_catches_hijacks;
    Alcotest.test_case "rov misses forged origins" `Quick test_rov_misses_forged_origin;
    Alcotest.test_case "aspa catches leaks" `Quick test_aspa_catches_leaks ]
