(* Tests for Rz_policy.Action_eval: RFC 2622 action semantics including
   the pref/LocalPref inversion the paper's footnote 5 highlights. *)
module AE = Rz_policy.Action_eval

let actions_of text =
  match
    Rz_policy.Parser.parse_rule ~direction:`Import ~multiprotocol:false
      (Printf.sprintf "from AS1 action %s; accept ANY" text)
  with
  | Ok rule -> rule
  | Error e -> Alcotest.fail (text ^ ": " ^ e)

let apply text =
  match AE.apply_rule_actions (actions_of text) AE.empty with
  | Ok attrs -> attrs
  | Error e -> Alcotest.fail (text ^ ": " ^ e)

let apply_err text =
  match AE.apply_rule_actions (actions_of text) AE.empty with
  | Ok _ -> Alcotest.failf "%s unexpectedly succeeded" text
  | Error e -> e

let test_pref_inversion () =
  (* footnote 5: LocalPref = 65535 - pref, so pref=50 is HIGH preference *)
  Alcotest.(check (option int)) "pref 50" (Some 65485) (apply "pref=50").local_pref;
  Alcotest.(check (option int)) "pref 65535" (Some 0) (apply "pref=65535").local_pref;
  Alcotest.(check (option int)) "pref 0" (Some 65535) (apply "pref=0").local_pref;
  Alcotest.(check int) "conversion clamps" 0 (AE.pref_to_local_pref 99999)

let test_pref_ordering_matches_paper_example () =
  (* AS199284: pref=65535 for community 65535:0 routes, 65435 otherwise —
     under the inversion the 65535:0 routes end up LESS preferred *)
  let special = (apply "pref = 65535").local_pref in
  let normal = (apply "pref = 65435").local_pref in
  Alcotest.(check bool) "65535 -> lower LocalPref" true (special < normal)

let test_med_and_dpa () =
  Alcotest.(check (option int)) "med" (Some 10) (apply "med = 10").med;
  Alcotest.(check (option int)) "med igp_cost clears" None (apply "med = igp_cost").med;
  Alcotest.(check (option int)) "dpa" (Some 7) (apply "dpa = 7").dpa

let test_community_append_and_delete () =
  let attrs = apply "community .= { 64628:20, 64628:21 }" in
  Alcotest.(check (list (pair int int))) "append" [ (64628, 20); (64628, 21) ]
    attrs.communities;
  (* append is idempotent per value *)
  let attrs2 =
    match
      AE.apply_rule_actions (actions_of "community.append(64628:20, 64628:22)") attrs
    with
    | Ok a -> a
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check (list (pair int int))) "dedup append"
    [ (64628, 20); (64628, 21); (64628, 22) ]
    attrs2.communities;
  let attrs3 =
    match AE.apply_rule_actions (actions_of "community.delete(64628:21)") attrs2 with
    | Ok a -> a
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check (list (pair int int))) "delete" [ (64628, 20); (64628, 22) ]
    attrs3.communities

let test_community_replace () =
  let attrs = apply "community = 65000:1" in
  Alcotest.(check (list (pair int int))) "replace" [ (65000, 1) ] attrs.communities

let test_well_known_communities () =
  Alcotest.(check (pair int int)) "NO_EXPORT" (65535, 65281)
    (Result.get_ok (AE.parse_community "NO_EXPORT"));
  Alcotest.(check (pair int int)) "BLACKHOLE" (65535, 666)
    (Result.get_ok (AE.parse_community "blackhole"));
  Alcotest.(check string) "to_string" "65535:666" (AE.community_to_string (65535, 666));
  Alcotest.(check bool) "garbage rejected" true (Result.is_error (AE.parse_community "banana"));
  Alcotest.(check bool) "out of range" true (Result.is_error (AE.parse_community "70000:1"))

let test_aspath_prepend () =
  let attrs = apply "aspath.prepend(AS65000, AS65000)" in
  Alcotest.(check (list int)) "prepends" [ 65000; 65000 ] attrs.prepends

let test_multiple_actions_in_order () =
  let attrs = apply "pref = 100; med = 5; community .= { 65000:1 }" in
  Alcotest.(check (option int)) "pref applied" (Some 65435) attrs.local_pref;
  Alcotest.(check (option int)) "med applied" (Some 5) attrs.med;
  Alcotest.(check (list (pair int int))) "community applied" [ (65000, 1) ] attrs.communities

let test_paper_as8323_actions () =
  (* Appendix A: from AS8267:AS-Krakow-1014 action pref=50 — a strongly
     preferred import under the RFC semantics *)
  let attrs = apply "pref=50" in
  Alcotest.(check (option int)) "LocalPref 65485" (Some 65485) attrs.local_pref

let test_errors () =
  Alcotest.(check bool) "unknown attribute" true
    (String.length (apply_err "colour = 7") > 0);
  Alcotest.(check bool) "bad integer" true (String.length (apply_err "pref = high") > 0);
  Alcotest.(check bool) "contains is not an action" true
    (String.length (apply_err "community.contains(65000:1)") > 0);
  Alcotest.(check bool) "bad community" true
    (String.length (apply_err "community.append(bogus)") > 0)

let suite =
  [ Alcotest.test_case "pref inversion (footnote 5)" `Quick test_pref_inversion;
    Alcotest.test_case "pref ordering (AS199284)" `Quick test_pref_ordering_matches_paper_example;
    Alcotest.test_case "med / dpa" `Quick test_med_and_dpa;
    Alcotest.test_case "community append/delete" `Quick test_community_append_and_delete;
    Alcotest.test_case "community replace" `Quick test_community_replace;
    Alcotest.test_case "well-known communities" `Quick test_well_known_communities;
    Alcotest.test_case "aspath prepend" `Quick test_aspath_prepend;
    Alcotest.test_case "action order" `Quick test_multiple_actions_in_order;
    Alcotest.test_case "AS8323 pref" `Quick test_paper_as8323_actions;
    Alcotest.test_case "errors" `Quick test_errors ]
