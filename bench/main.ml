(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation over the synthetic world, prints paper-vs-measured values,
   and runs Bechamel micro-benchmarks (one per table/figure pipeline
   stage, plus the ablations called out in DESIGN.md).

   Run with: dune exec bench/main.exe
   Pass --quick to shrink the world (used by CI/tests). *)

module Table = Rz_util.Table
module Stats_util = Rz_util.Stats_util
module Aggregate = Rz_verify.Aggregate

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

(* --csv DIR: also write each figure's raw data series for plotting. *)
let csv_dir =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = "--csv" then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

(* --metrics FILE: enable the Rz_obs registry for the whole run and
   write a machine-readable JSON perf snapshot (phase timings, counters,
   latency quantiles) that future PRs can diff against. *)
let metrics_path =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = "--metrics" then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

(* --bench-verify [FILE]: run the verify-throughput benchmark (memo/dedup
   overhaul vs the pre-overhaul engine ablation), write FILE (default
   BENCH_verify.json), and exit. --bench-baseline FILE additionally
   compares route accounting against a committed baseline snapshot and
   fails when it drifts. *)
let bench_verify_out =
  let rec find i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--bench-verify" then
      if
        i + 1 < Array.length Sys.argv
        && not (String.length Sys.argv.(i + 1) >= 2 && String.sub Sys.argv.(i + 1) 0 2 = "--")
      then Some Sys.argv.(i + 1)
      else Some "BENCH_verify.json"
    else find (i + 1)
  in
  find 1

(* --bench-stream [FILE]: run the streaming-verification benchmark
   (sustained updates/sec through the incremental service, bounded-queue
   hwm, rate-1.0 chaos survival), write the JSON result to FILE (default
   BENCH_stream.json), and exit. Shares --bench-baseline for the
   accounting gate. *)
let bench_stream_out =
  let rec find i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--bench-stream" then
      if
        i + 1 < Array.length Sys.argv
        && not (String.length Sys.argv.(i + 1) >= 2 && String.sub Sys.argv.(i + 1) 0 2 = "--")
      then Some Sys.argv.(i + 1)
      else Some "BENCH_stream.json"
    else find (i + 1)
  in
  find 1

(* --bench-serve [FILE]: run the query-service benchmark (queries/sec
   through the shared dispatch path, single-threaded and with worker
   domains racing live NRTM generation swaps), write the JSON result to
   FILE (default BENCH_serve.json), and exit. Shares --bench-baseline
   for the accounting gate. *)
let bench_serve_out =
  let rec find i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--bench-serve" then
      if
        i + 1 < Array.length Sys.argv
        && not (String.length Sys.argv.(i + 1) >= 2 && String.sub Sys.argv.(i + 1) 0 2 = "--")
      then Some Sys.argv.(i + 1)
      else Some "BENCH_serve.json"
    else find (i + 1)
  in
  find 1

(* --bench-scale [FILE]: run the paper-scale shard-and-merge benchmark
   (multi-process verify over a replicated RIB vs the in-process oracle),
   write FILE (default BENCH_scale.json), and exit. Shares
   --bench-baseline for the accounting gate. *)
let bench_scale_out =
  let rec find i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--bench-scale" then
      if
        i + 1 < Array.length Sys.argv
        && not (String.length Sys.argv.(i + 1) >= 2 && String.sub Sys.argv.(i + 1) 0 2 = "--")
      then Some Sys.argv.(i + 1)
      else Some "BENCH_scale.json"
    else find (i + 1)
  in
  find 1

(* OCaml 5 forbids Unix.fork in a process that has ever spawned a
   domain, and the shard-and-merge bench forks workers. Pin the world
   build (parallel ingest) to one domain for that mode, via the same env
   override every call site already honors; the in-process oracle pass
   (which does spawn a domain) runs after the forking passes. *)
let () =
  if bench_scale_out <> None then Unix.putenv "RPSLYZER_DOMAINS" "1"

let bench_baseline_path =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = "--bench-baseline" then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

(* --bench-ingest [FILE]: run the ingestion benchmark (parallel sharded
   parse + IR snapshot cache vs the sequential Db.of_dumps loop), write
   FILE (default BENCH_ingest.json), and exit. Shares --bench-baseline
   with the verify bench: only one benchmark runs per invocation. *)
let bench_ingest_out =
  let rec find i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--bench-ingest" then
      if
        i + 1 < Array.length Sys.argv
        && not (String.length Sys.argv.(i + 1) >= 2 && String.sub Sys.argv.(i + 1) 0 2 = "--")
      then Some Sys.argv.(i + 1)
      else Some "BENCH_ingest.json"
    else find (i + 1)
  in
  find 1

(* --metrics-diff CURRENT BASELINE: structurally compare two metrics /
   bench JSON snapshots and exit non-zero on regressions, without
   building a world. Wall-clock keys and the per-run subtrees
   (meta/histograms/spans) are skipped; throughput keys (routes_per_sec,
   mib_per_sec, speedup...) are floor-checked — CURRENT must retain at
   least (1 - tolerance) of BASELINE — and every other leaf must match
   exactly, including the key sets themselves. --diff-tolerance P sets
   the allowed fractional throughput regression (default 0.1). *)
let metrics_diff_args =
  let rec find i =
    if i >= Array.length Sys.argv - 2 then None
    else if Sys.argv.(i) = "--metrics-diff" then Some (Sys.argv.(i + 1), Sys.argv.(i + 2))
    else find (i + 1)
  in
  find 1

let diff_tolerance =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then 0.1
    else if Sys.argv.(i) = "--diff-tolerance" then float_of_string Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let () =
  match metrics_diff_args with
  | None -> ()
  | Some (current_path, baseline_path) ->
    let module Json = Rpslyzer.Json in
    let read path =
      let text =
        try
          let ic = open_in path in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          s
        with Sys_error e ->
          Printf.eprintf "METRICS DIFF FAILED: %s\n" e;
          exit 1
      in
      match Json.of_string text with
      | Ok j -> j
      | Error e ->
        Printf.eprintf "METRICS DIFF FAILED: %s: %s\n" path e;
        exit 1
    in
    (* Per-run subtrees: distributions, rolling windows and span trees
       have no stable cross-run identity, and meta is run metadata by
       construction. *)
    let skip_subtrees = [ "meta"; "histograms"; "spans"; "windows" ] in
    (* Wall-clock (and host-shape) keys: informational, never compared. *)
    let skip_keys =
      [ "secs"; "save_secs"; "load_secs"; "ablation_secs"; "sharded_secs";
        "total_ns"; "max_ns"; "p50"; "p90"; "p99"; "duration_s";
        "start_unix_s"; "elapsed_s"; "domains_effective"; "cores";
        "minor_words"; "major_words" ]
    in
    let starts_with p s =
      String.length s >= String.length p && String.sub s 0 (String.length p) = p
    in
    let ends_with p s =
      String.length s >= String.length p
      && String.sub s (String.length s - String.length p) (String.length p) = p
    in
    let is_throughput k = ends_with "_per_sec" k || starts_with "speedup" k in
    let num = function
      | Json.Int i -> Some (float_of_int i)
      | Json.Float f -> Some f
      | _ -> None
    in
    let problems = ref [] in
    let problem path msg =
      problems := Printf.sprintf "%s: %s" path msg :: !problems
    in
    let rec walk path key base cur =
      match (base, cur) with
      | Json.Obj bs, Json.Obj cs ->
        List.iter
          (fun (k, bv) ->
            if not (List.mem k skip_subtrees || List.mem k skip_keys) then
              let sub = if path = "" then k else path ^ "." ^ k in
              match List.assoc_opt k cs with
              | Some cv -> walk sub k bv cv
              | None -> problem sub "missing from current snapshot")
          bs;
        List.iter
          (fun (k, _) ->
            if
              (not (List.mem k skip_subtrees || List.mem k skip_keys))
              && List.assoc_opt k bs = None
            then problem (if path = "" then k else path ^ "." ^ k) "not in baseline")
          cs
      | Json.List bs, Json.List cs ->
        if List.length bs <> List.length cs then
          problem path
            (Printf.sprintf "length %d vs baseline %d" (List.length cs)
               (List.length bs))
        else
          List.iteri
            (fun i (bv, cv) -> walk (Printf.sprintf "%s[%d]" path i) key bv cv)
            (List.combine bs cs)
      | _ -> (
        match (num base, num cur) with
        | Some b, Some c ->
          if is_throughput key then begin
            let floor = (1. -. diff_tolerance) *. b in
            if c < floor then
              problem path
                (Printf.sprintf
                   "throughput regression: %.1f vs baseline %.1f (floor %.1f at tolerance %.2f)"
                   c b floor diff_tolerance)
          end
          else if
            abs_float (c -. b) > 1e-9 *. Float.max 1. (Float.max (abs_float b) (abs_float c))
          then problem path (Printf.sprintf "%g vs baseline %g" c b)
        | _ ->
          if not (Json.equal base cur) then
            problem path
              (Printf.sprintf "%s vs baseline %s" (Json.to_string cur)
                 (Json.to_string base)))
    in
    walk "" "" (read baseline_path) (read current_path);
    (match !problems with
     | [] ->
       Printf.printf "metrics diff: %s matches %s (tolerance %.2f)\n" current_path
         baseline_path diff_tolerance;
       exit 0
     | ps ->
       Printf.eprintf "METRICS DIFF FAILED: %s vs %s (%d problem(s)):\n" current_path
         baseline_path (List.length ps);
       List.iter (fun p -> Printf.eprintf "  %s\n" p) (List.rev ps);
       exit 1)

let () = if metrics_path <> None then Rpslyzer.Obs.enable ()

let write_csv name header rows =
  match csv_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let oc = open_out (Filename.concat dir (name ^ ".csv")) in
    output_string oc (String.concat "," header ^ "\n");
    List.iter (fun row -> output_string oc (String.concat "," row ^ "\n")) rows;
    close_out oc;
    Printf.printf "(wrote %s/%s.csv: %d rows)\n" dir name (List.length rows)

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

let pct = Table.pct
let fint = float_of_int

(* GC pressure of the whole bench process up to payload-write time —
   recorded in every BENCH_*.json so allocation regressions show up in
   snapshot history even when wall-clock noise hides them. Run-varying,
   so the metrics diff skips these keys. *)
let gc_json () =
  let module Json = Rpslyzer.Json in
  let s = Gc.quick_stat () in
  Json.Obj
    [ ("minor_words", Json.Float s.Gc.minor_words);
      ("major_words", Json.Float s.Gc.major_words) ]

(* ------------------------------------------------------------------ *)
(* World construction (calibrated to the paper's population mixes)     *)
(* ------------------------------------------------------------------ *)

let big = Array.exists (fun a -> a = "--big") Sys.argv

let topo_params =
  if quick then { Rz_topology.Gen.default_params with n_tier1 = 4; n_mid = 40; n_stub = 160 }
  else if big then { Rz_topology.Gen.default_params with n_tier1 = 8; n_mid = 400; n_stub = 3000 }
  else { Rz_topology.Gen.default_params with n_tier1 = 6; n_mid = 150; n_stub = 700 }

let irr_config = Rz_synthirr.Config.default

let world =
  let t0 = Unix.gettimeofday () in
  let w = Rpslyzer.Pipeline.build_synthetic ~topo_params ~irr_config () in
  Printf.printf "world: %d ASes, built in %.2fs\n" (Rz_topology.Gen.n_ases w.topo)
    (Unix.gettimeofday () -. t0);
  w

(* ------------------------------------------------------------------ *)
(* Chaos mode: corruption-rate sweep (--chaos)                         *)
(* ------------------------------------------------------------------ *)

(* Sweeps object-level corruption over the freshly built world and
   asserts the robustness contract rather than timing anything: the
   pipeline must complete at every rate (no exception reaches us), route
   accounting must stay intact (collector dumps are not corrupted, and a
   crashed domain's shard is retried — so totals never move), and
   verification quality must degrade roughly in proportion to the damage,
   never collapse. Runs after world construction and exits 0, skipping
   the paper tables and micro-benchmarks. *)
let chaos = Array.exists (fun a -> a = "--chaos") Sys.argv

let () =
  if chaos then begin
    section "Chaos sweep: full pipeline under corrupted IRR dumps";
    Rpslyzer.Obs.enable ();
    let chaos_seed = 1337 in
    let rates = [ 0.0; 0.02; 0.05; 0.1; 0.2 ] in
    let run rate =
      Rpslyzer.Obs.reset ();
      let plan = Rz_fault.Fault.plan ~seed:chaos_seed ~rate () in
      let corrupted, report = Rz_fault.Fault.corrupt_dumps plan world.dumps in
      let db = Rz_irr.Db.of_dumps corrupted in
      let w = { world with Rpslyzer.Pipeline.db; dumps = corrupted } in
      let inject_domain_fault =
        if rate > 0. then Some (fun d -> if d = 0 then failwith "chaos domain crash")
        else None
      in
      let t0 = Unix.gettimeofday () in
      let agg, `Total total, `Excluded excluded =
        Rpslyzer.Pipeline.verify_parallel ?inject_domain_fault ~domains:4 w
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      let counts = Aggregate.counts_classes (Aggregate.overall agg) in
      let verified = List.assoc "verified" counts in
      let hops = Aggregate.n_hops agg in
      (rate, Rz_fault.Fault.total_faults report, total, excluded, hops, verified, elapsed)
    in
    let rows = List.map run rates in
    Table.print
      ~header:[ "rate"; "faults"; "routes"; "excluded"; "hops"; "verified"; "secs" ]
      (List.map
         (fun (rate, faults, total, excluded, hops, verified, elapsed) ->
           [ Printf.sprintf "%.2f" rate; string_of_int faults; string_of_int total;
             string_of_int excluded; string_of_int hops;
             Printf.sprintf "%s (%s)" (string_of_int verified)
               (pct (fint verified /. fint (max 1 hops)));
             Printf.sprintf "%.2f" elapsed ])
         rows);
    write_csv "chaos"
      [ "rate"; "faults"; "routes"; "excluded"; "hops"; "verified" ]
      (List.map
         (fun (rate, faults, total, excluded, hops, verified, _) ->
           [ string_of_float rate; string_of_int faults; string_of_int total;
             string_of_int excluded; string_of_int hops; string_of_int verified ])
         rows);
    (* Contract checks. *)
    let base_rate, base_faults, base_total, base_excluded, _, base_verified, _ =
      List.hd rows
    in
    assert (base_rate = 0.0 && base_faults = 0);
    let prev_verified = ref max_int in
    List.iter
      (fun (rate, faults, total, excluded, _, verified, _) ->
        if rate > 0. then assert (faults > 0);
        (* Route accounting is corruption-independent: collector dumps are
           untouched and crashed domains are retried without loss. *)
        assert (total = base_total);
        assert (excluded = base_excluded);
        (* Proportional degradation, not collapse: corruption can only
           lose verified hops, and even at 20% object corruption most of
           the clean world's verdicts must survive (the damage is local
           to the objects hit, within a loose 0.6 factor). *)
        assert (verified <= base_verified);
        assert (fint verified >= 0.6 *. fint base_verified);
        (* Monotone-ish: more corruption never helps. Small slack absorbs
           cross-rate sampling noise in which objects get hit. *)
        assert (fint verified <= 1.02 *. fint !prev_verified);
        prev_verified := min !prev_verified verified)
      rows;
    Printf.printf "\nchaos sweep: contract held at every rate (seed %d)\n" chaos_seed;
    exit 0
  end

(* ------------------------------------------------------------------ *)
(* Verify-throughput benchmark (--bench-verify)                        *)
(* ------------------------------------------------------------------ *)

(* Times the overhauled verification stack (hop-verdict memoization,
   compiled-regex cache, route dedup with multiplicity, work-stealing
   shards) against the closest in-tree ablation of the pre-overhaul
   engine: memoization off, no dedup, one route at a time — what
   [Pipeline.verify] did before this layer existed. The three runs must
   produce identical aggregates (the whole point of the caches is that
   they are invisible in the output); accounting drift or zero throughput
   is a benchmark failure, and [--bench-baseline] extends that check
   across commits. Exits 0 on success, skipping the paper tables. *)
let () =
  match bench_verify_out with
  | None -> ()
  | Some out ->
    section "Verify throughput: overhauled engine vs pre-overhaul ablation";
    let module Json = Rpslyzer.Json in
    let module Engine = Rz_verify.Engine in
    let fail msg =
      Printf.eprintf "BENCH VERIFY FAILED: %s\n" msg;
      exit 1
    in
    (* The workload is [snapshots] consecutive RIB snapshots of the
       world's collector dumps — the shape of the paper's 779M-route run,
       where the same routes recur across collectors and dump times. Route
       dedup and hop memoization exist precisely for that recurrence. *)
    let snapshots = 12 in
    let bench_world =
      { world with
        Rpslyzer.Pipeline.table_dumps =
          List.concat (List.init snapshots (fun _ -> world.Rpslyzer.Pipeline.table_dumps)) }
    in
    let routes =
      Array.of_list
        (List.concat_map
           (fun (d : Rz_bgp.Table_dump.t) -> d.routes)
           bench_world.Rpslyzer.Pipeline.table_dumps)
    in
    let n_total = Array.length routes in
    let fingerprint agg =
      (Aggregate.n_routes agg, Aggregate.n_hops agg,
       Aggregate.counts_classes (Aggregate.overall agg))
    in
    (* All passes are timed with metrics disabled (shared atomic counters
       would serialize the domains); a separate metered pass afterwards
       collects the cache statistics. Shared Db/Rel_db caches are warmed
       first so every pass sees the same state. *)
    Rpslyzer.Obs.disable ();
    Rz_irr.Db.warm_caches world.db;
    Rz_asrel.Rel_db.warm_cones world.rels;
    (* Each pass runs [reps] times and reports the fastest: wall-clock on a
       shared machine is noisy and the minimum is the least contaminated
       estimate of the code's actual cost. *)
    let reps = 3 in
    let timed f =
      let best_t = ref infinity and best_r = ref None in
      for _ = 1 to reps do
        let t0 = Unix.gettimeofday () in
        let r = f () in
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !best_t then begin
          best_t := dt;
          best_r := Some r
        end
      done;
      (Option.get !best_r, !best_t)
    in
    (* pre-overhaul ablation: sequential, memo off, undeduplicated *)
    let (agg_off, excl_off), t_off =
      timed (fun () ->
          let engine =
            Engine.create
              ~config:{ Engine.default_config with memoize = false }
              world.db world.rels
          in
          let agg = Aggregate.create () in
          let excluded = ref 0 in
          Array.iter
            (fun route ->
              match Engine.verify_route engine route with
              | Some report -> Aggregate.add_route_report agg report
              | None -> incr excluded)
            routes;
          (agg, !excluded))
    in
    (* overhauled stack, single domain: dedup + memo, no parallelism *)
    let (agg_on, excl_on), t_on =
      timed (fun () ->
          let agg, `Total total, `Excluded excluded =
            Rpslyzer.Pipeline.verify_parallel ~domains:1 bench_world
          in
          if total <> n_total then fail "single-domain run dropped routes";
          (agg, excluded))
    in
    (* Full parallel stack: dedup + memo + work-stealing across domains.
       This row exercises the stealing/merge/retry machinery and its
       identical-aggregate contract; on boxes with fewer cores than
       [par_domains] it is oversubscribed and its wall-clock is not a
       speedup claim — the 1-domain row is the like-for-like measure. *)
    let par_domains = 4 in
    let (agg_par, excl_par), t_par =
      timed (fun () ->
          let agg, `Total total, `Excluded excluded =
            Rpslyzer.Pipeline.verify_parallel ~domains:par_domains bench_world
          in
          if total <> n_total then fail "parallel run dropped routes";
          (agg, excluded))
    in
    (* metered pass: cache statistics (hit rate, dedup, stealing) *)
    let c_hits = Rpslyzer.Obs.Counter.make "verify.memo_hits" in
    let c_misses = Rpslyzer.Obs.Counter.make "verify.memo_misses" in
    let c_collapsed = Rpslyzer.Obs.Counter.make "dedup.collapsed" in
    let c_steal = Rpslyzer.Obs.Counter.make "steal.batches" in
    Rpslyzer.Obs.enable ();
    Rpslyzer.Obs.reset ();
    ignore (Rpslyzer.Pipeline.verify_parallel ~domains:1 bench_world);
    Rpslyzer.Obs.disable ();
    let memo_hits = Rpslyzer.Obs.Counter.get c_hits in
    let memo_misses = Rpslyzer.Obs.Counter.get c_misses in
    let collapsed = Rpslyzer.Obs.Counter.get c_collapsed in
    let steal_batches = Rpslyzer.Obs.Counter.get c_steal in
    (* identical-output contract *)
    if fingerprint agg_on <> fingerprint agg_off || excl_on <> excl_off then
      fail "memo/dedup changed the aggregate vs the pre-overhaul ablation";
    if fingerprint agg_par <> fingerprint agg_off || excl_par <> excl_off then
      fail "work-stealing parallel run changed the aggregate";
    let rps t = if t > 0. then fint n_total /. t else 0. in
    if rps t_off <= 0. || rps t_on <= 0. || rps t_par <= 0. then
      fail "zero throughput";
    let hit_rate =
      if memo_hits + memo_misses = 0 then 0.
      else fint memo_hits /. fint (memo_hits + memo_misses)
    in
    let speedup = t_off /. t_on in
    Table.print
      ~header:[ "engine"; "secs"; "routes/s"; "speedup" ]
      [ [ "pre-overhaul (no memo, no dedup)"; Printf.sprintf "%.3f" t_off;
          Printf.sprintf "%.0f" (rps t_off); "1.00x" ];
        [ "overhauled, 1 domain"; Printf.sprintf "%.3f" t_on;
          Printf.sprintf "%.0f" (rps t_on); Printf.sprintf "%.2fx" speedup ];
        [ Printf.sprintf "overhauled, %d domains" par_domains;
          Printf.sprintf "%.3f" t_par; Printf.sprintf "%.0f" (rps t_par);
          Printf.sprintf "%.2fx" (t_off /. t_par) ] ];
    if Rz_util.Domains.recommended () < par_domains then
      Printf.printf
        "(%d-domain row oversubscribed: %d core(s) available)\n"
        par_domains
        (Rz_util.Domains.recommended ());
    Printf.printf
      "\n%s routes (%s unique), memo hit rate %s, %d batches stolen\n"
      (Table.commas n_total)
      (Table.commas (n_total - collapsed))
      (pct hit_rate) steal_batches;
    let mode = if quick then "quick" else if big then "big" else "default" in
    let counts = Aggregate.counts_classes (Aggregate.overall agg_off) in
    let accounting =
      Json.Obj
        ([ ("routes", Json.Int n_total);
           ("excluded", Json.Int excl_off);
           ("unique_routes", Json.Int (n_total - collapsed));
           ("hops", Json.Int (Aggregate.n_hops agg_off)) ]
        @ List.map (fun (label, v) -> (label, Json.Int v)) counts)
    in
    let json =
      Json.Obj
        [ ("mode", Json.String mode);
          ("accounting", accounting);
          ( "baseline_engine",
            Json.Obj
              [ ("secs", Json.Float t_off);
                ("routes_per_sec", Json.Float (rps t_off)) ] );
          ( "overhauled",
            Json.Obj
              [ ("secs", Json.Float t_on);
                ("routes_per_sec", Json.Float (rps t_on));
                ("memo_hits", Json.Int memo_hits);
                ("memo_misses", Json.Int memo_misses);
                ("memo_hit_rate", Json.Float hit_rate);
                ("dedup_collapsed", Json.Int collapsed) ] );
          ( "parallel",
            Json.Obj
              [ ("domains", Json.Int par_domains);
                ("secs", Json.Float t_par);
                ("routes_per_sec", Json.Float (rps t_par));
                ("steal_batches", Json.Int steal_batches) ] );
          ("speedup_sequential", Json.Float speedup);
          ("gc", gc_json ()) ]
    in
    let oc = open_out out in
    output_string oc (Json.to_string ~indent:2 json);
    output_string oc "\n";
    close_out oc;
    Printf.printf "(wrote %s)\n" out;
    (match bench_baseline_path with
     | None -> ()
     | Some path ->
       let text =
         let ic = open_in path in
         let s = really_input_string ic (in_channel_length ic) in
         close_in ic;
         s
       in
       (match Json.of_string text with
        | Error e -> fail (Printf.sprintf "baseline %s: %s" path e)
        | Ok base ->
          (match (Json.member "mode" base, Json.member "accounting" base) with
           | Some (Json.String base_mode), Some base_acc ->
             if base_mode <> mode then
               fail
                 (Printf.sprintf "baseline mode %s does not match run mode %s"
                    base_mode mode)
             else if not (Json.equal base_acc accounting) then
               fail
                 (Printf.sprintf
                    "route accounting drifted from baseline %s\nbaseline:  %s\nmeasured: %s"
                    path (Json.to_string base_acc) (Json.to_string accounting))
             else Printf.printf "accounting matches baseline %s\n" path
           | _ -> fail (Printf.sprintf "baseline %s missing mode/accounting" path))));
    exit 0

(* ------------------------------------------------------------------ *)
(* Paper-scale shard-and-merge benchmark (--bench-scale)                *)
(* ------------------------------------------------------------------ *)

(* Times the multi-process shard-and-merge engine (Rz_shard) over a RIB
   replicated to the paper-run shape — >= 10M routes per pass, where the
   same routes recur across collectors and snapshots — against the
   in-process 1-domain oracle. Three hard gates: the route floor, the
   canonical aggregate fingerprint (sharded == oracle, bit for bit), and
   nonzero throughput. The near-linear shard-scaling gate (>= 2.5x at 4
   shards) only applies when the host actually has 4 cores: forked
   workers time-slicing one core measure scheduler fairness, not the
   protocol — the same oversubscription caveat BENCH_verify documents
   for its domain row. The core count is recorded in the payload. *)
let () =
  match bench_scale_out with
  | None -> ()
  | Some out ->
    section "Paper-scale verification: multi-process shard-and-merge";
    let module Json = Rpslyzer.Json in
    let fail msg =
      Printf.eprintf "BENCH SCALE FAILED: %s\n" msg;
      exit 1
    in
    let route_floor = 10_000_000 in
    let base_routes =
      List.fold_left
        (fun acc (d : Rz_bgp.Table_dump.t) -> acc + List.length d.routes)
        0 world.Rpslyzer.Pipeline.table_dumps
    in
    if base_routes = 0 then fail "empty world";
    let snapshots = (route_floor + base_routes - 1) / base_routes in
    let bench_world =
      { world with
        Rpslyzer.Pipeline.table_dumps =
          List.concat
            (List.init snapshots (fun _ -> world.Rpslyzer.Pipeline.table_dumps)) }
    in
    let n_total = base_routes * snapshots in
    Printf.printf "workload: %s routes (%d RIB snapshots of %s)\n"
      (Table.commas n_total) snapshots (Table.commas base_routes);
    if n_total < route_floor then fail "route floor not reached";
    Rpslyzer.Obs.disable ();
    Rz_irr.Db.warm_caches world.Rpslyzer.Pipeline.db;
    Rz_asrel.Rel_db.warm_cones world.Rpslyzer.Pipeline.rels;
    (* Each pass walks >= 10M routes; one rep keeps the quick/CI rule
       affordable, and the gates here are exactness gates (fingerprint,
       floor), not tight perf floors — those need min-of-reps. *)
    let reps = if quick then 1 else 2 in
    let timed f =
      let best_t = ref infinity and best_r = ref None in
      for _ = 1 to reps do
        let t0 = Unix.gettimeofday () in
        let r = f () in
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !best_t then begin
          best_t := dt;
          best_r := Some r
        end
      done;
      (Option.get !best_r, !best_t)
    in
    let run_sharded shards =
      timed (fun () ->
          let agg, `Total total, `Excluded excluded =
            Rz_shard.Shard.verify_sharded ~shards bench_world
          in
          if total <> n_total then
            fail (Printf.sprintf "%d-shard run dropped routes" shards);
          (agg, excluded))
    in
    (* forking passes first: verify_parallel spawns a domain, after which
       the runtime refuses Unix.fork for the life of the process *)
    let (agg_s1, excl_s1), t_s1 = run_sharded 1 in
    let (agg_s4, excl_s4), t_s4 = run_sharded 4 in
    (* in-process oracle: the overhauled single-domain engine *)
    let (agg_oracle, excl_oracle), t_oracle =
      timed (fun () ->
          let agg, `Total total, `Excluded excluded =
            Rpslyzer.Pipeline.verify_parallel ~domains:1 bench_world
          in
          if total <> n_total then fail "oracle dropped routes";
          (agg, excluded))
    in
    (* exact-merge contract: canonical fingerprints, bit for bit *)
    let fp = Aggregate.fingerprint agg_oracle in
    if Aggregate.fingerprint agg_s1 <> fp || excl_s1 <> excl_oracle then
      fail "1-shard aggregate differs from the in-process oracle";
    if Aggregate.fingerprint agg_s4 <> fp || excl_s4 <> excl_oracle then
      fail "4-shard merged aggregate differs from the in-process oracle";
    let rps t = if t > 0. then fint n_total /. t else 0. in
    if rps t_oracle <= 0. || rps t_s1 <= 0. || rps t_s4 <= 0. then
      fail "zero throughput";
    let speedup_shards = t_s1 /. t_s4 in
    let cores = Domain.recommended_domain_count () in
    Table.print
      ~header:[ "engine"; "secs"; "routes/s"; "vs 1 shard" ]
      [ [ "in-process oracle (1 domain)"; Printf.sprintf "%.3f" t_oracle;
          Printf.sprintf "%.0f" (rps t_oracle); "-" ];
        [ "sharded, 1 worker"; Printf.sprintf "%.3f" t_s1;
          Printf.sprintf "%.0f" (rps t_s1); "1.00x" ];
        [ "sharded, 4 workers"; Printf.sprintf "%.3f" t_s4;
          Printf.sprintf "%.0f" (rps t_s4);
          Printf.sprintf "%.2fx" speedup_shards ] ];
    Printf.printf "aggregate fingerprint %s (sharded == oracle)\n" fp;
    if cores >= 4 then begin
      if speedup_shards < 2.5 then
        fail
          (Printf.sprintf
             "4-shard speedup %.2fx below the 2.5x floor on a %d-core host"
             speedup_shards cores)
    end
    else
      Printf.printf
        "(4-worker speedup gate skipped: %d core(s) available, workers \
         time-slice)\n"
        cores;
    let mode = if quick then "quick" else if big then "big" else "default" in
    let counts = Aggregate.counts_classes (Aggregate.overall agg_oracle) in
    let accounting =
      Json.Obj
        ([ ("routes", Json.Int n_total);
           ("excluded", Json.Int excl_oracle);
           ("hops", Json.Int (Aggregate.n_hops agg_oracle));
           ("fingerprint", Json.String fp) ]
        @ List.map (fun (label, v) -> (label, Json.Int v)) counts)
    in
    let json =
      Json.Obj
        [ ("mode", Json.String mode);
          ("accounting", accounting);
          ("route_floor", Json.Int route_floor);
          ("snapshots", Json.Int snapshots);
          ("cores", Json.Int cores);
          ( "oracle",
            Json.Obj
              [ ("secs", Json.Float t_oracle);
                ("routes_per_sec", Json.Float (rps t_oracle)) ] );
          ( "shards_1",
            Json.Obj
              [ ("secs", Json.Float t_s1);
                ("routes_per_sec", Json.Float (rps t_s1)) ] );
          ( "shards_4",
            Json.Obj
              [ ("secs", Json.Float t_s4);
                ("routes_per_sec", Json.Float (rps t_s4)) ] );
          ("speedup_shards", Json.Float speedup_shards);
          ("gc", gc_json ()) ]
    in
    let oc = open_out out in
    output_string oc (Json.to_string ~indent:2 json);
    output_string oc "\n";
    close_out oc;
    Printf.printf "(wrote %s)\n" out;
    (match bench_baseline_path with
     | None -> ()
     | Some path ->
       let text =
         let ic = open_in path in
         let s = really_input_string ic (in_channel_length ic) in
         close_in ic;
         s
       in
       (match Json.of_string text with
        | Error e -> fail (Printf.sprintf "baseline %s: %s" path e)
        | Ok base ->
          (match (Json.member "mode" base, Json.member "accounting" base) with
           | Some (Json.String base_mode), Some base_acc ->
             if base_mode <> mode then
               fail
                 (Printf.sprintf "baseline mode %s does not match run mode %s"
                    base_mode mode)
             else if not (Json.equal base_acc accounting) then
               fail
                 (Printf.sprintf
                    "scale accounting drifted from baseline %s\nbaseline:  %s\nmeasured: %s"
                    path (Json.to_string base_acc) (Json.to_string accounting))
             else Printf.printf "accounting matches baseline %s\n" path
           | _ -> fail (Printf.sprintf "baseline %s missing mode/accounting" path))));
    exit 0

(* ------------------------------------------------------------------ *)
(* Ingestion benchmark (--bench-ingest)                                 *)
(* ------------------------------------------------------------------ *)

(* Times the overhauled ingestion stack (single-pass scanner, sharded
   per-dump lowering with memoized rule/member parsers, winner-scan
   merge) and the IR snapshot cache against the sequential ablation:
   [Reader.parse_string] + [Lower.add_dump] per dump in priority order —
   what [Db.of_dumps] did before this layer existed. Contracts asserted
   here:

     - identical IR: the parallel path at 4 forced domains must be
       byte-identical (Ir_json) to the sequential oracle;
     - parse throughput: the parallel path's parse phase must beat the
       ablation's parser by >= 2x in default/big mode (the single-pass
       scanner supplies that on one core; domain sharding scales it
       further on multicore hosts) — quick mode uses a looser 1.4x
       floor because its dumps are small enough for timer noise;
     - snapshot: loading a snapshot must be >= 5x faster than the cold
       sequential parse (>= 2x in quick mode), and a flipped byte must
       be rejected and fall back to parsing, never silently loaded.

   Measurements interleave the two sides rep by rep (same thermal/noise
   profile) and keep the fastest rep of each. Exits 0 on success. *)
let () =
  match bench_ingest_out with
  | None -> ()
  | Some out ->
    section "Ingestion: parallel sharded parse + snapshot cache vs sequential ablation";
    let module Json = Rpslyzer.Json in
    let module Ingest = Rz_ingest.Ingest in
    let fail msg =
      Printf.eprintf "BENCH INGEST FAILED: %s\n" msg;
      exit 1
    in
    let dumps = world.Rpslyzer.Pipeline.dumps in
    let n_dumps = List.length dumps in
    let bytes = List.fold_left (fun a (_, t) -> a + String.length t) 0 dumps in
    Rpslyzer.Obs.disable ();
    let reps = if quick then 5 else 7 in
    (* interleaved min-of-reps: a() and b() alternate within each rep *)
    let timed_pair a b =
      let best_a = ref infinity and best_b = ref infinity in
      for _ = 1 to reps do
        let t0 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (a ()));
        let ta = Unix.gettimeofday () -. t0 in
        let t1 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (b ()));
        let tb = Unix.gettimeofday () -. t1 in
        if ta < !best_a then best_a := ta;
        if tb < !best_b then best_b := tb
      done;
      (!best_a, !best_b)
    in
    let par_domains = 4 in
    (* end-to-end: sequential oracle vs the parallel path as shipped
       (requested 4 domains; the pool clamps itself to the host) *)
    let t_seq, t_par =
      timed_pair
        (fun () -> Ingest.ingest_sequential dumps)
        (fun () -> Ingest.ingest ~domains:par_domains dumps)
    in
    (* parse phase only: the ablation's parser vs the parallel path's
       phase A (work-stealing scan over whole files) *)
    let files = Array.of_list dumps in
    let scan_all () =
      let eff = min par_domains (max 1 (Rz_util.Domains.recommended ())) in
      if eff <= 1 then
        Array.iter (fun (_, t) -> ignore (Sys.opaque_identity (Rz_rpsl.Reader.scan_string t))) files
      else begin
        let next = Atomic.make 0 in
        let work () =
          let rec drain () =
            let i = Atomic.fetch_and_add next 1 in
            if i < Array.length files then begin
              ignore (Sys.opaque_identity (Rz_rpsl.Reader.scan_string (snd files.(i))));
              drain ()
            end
          in
          drain ()
        in
        List.iter Domain.join (List.init eff (fun _ -> Domain.spawn work))
      end
    in
    let t_parse_seq, t_parse_par =
      timed_pair
        (fun () ->
          Array.iter
            (fun (_, t) -> ignore (Sys.opaque_identity (Rz_rpsl.Reader.parse_string t)))
            files)
        scan_all
    in
    (* identical-IR contract, at genuinely forced multi-domain execution *)
    let oracle_ir = Ingest.ingest_sequential dumps in
    let oracle = Rz_ir.Ir_json.export_string oracle_ir in
    List.iter
      (fun domains ->
        let got =
          Rz_ir.Ir_json.export_string
            (Ingest.ingest ~domains ~force_domains:true dumps)
        in
        if not (String.equal got oracle) then
          fail (Printf.sprintf "parallel ingest at %d domains is not byte-identical" domains))
      [ 1; par_domains ];
    (* snapshot cache: save, timed load, digest hit, flipped-byte reject *)
    let snap = Filename.temp_file "rz_bench_snapshot" ".snap" in
    let digest = Ingest.dumps_digest dumps in
    let t0 = Unix.gettimeofday () in
    Rz_ir.Ir_snapshot.save snap ~input_digest:digest oracle_ir;
    let t_snap_save = Unix.gettimeofday () -. t0 in
    let snap_bytes = (Unix.stat snap).Unix.st_size in
    let t_snap_load =
      let best = ref infinity in
      for _ = 1 to reps do
        let t0 = Unix.gettimeofday () in
        (match Rz_ir.Ir_snapshot.load snap with
         | Ok _ -> ()
         | Error e -> fail ("snapshot load: " ^ e));
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !best then best := dt
      done;
      !best
    in
    (match Rz_ir.Ir_snapshot.load snap with
     | Ok (d, ir) ->
       if not (String.equal d digest) then fail "snapshot digest drifted";
       if not (String.equal (Rz_ir.Ir_json.export_string ir) oracle) then
         fail "snapshot round-trip is not byte-identical"
     | Error e -> fail ("snapshot load: " ^ e));
    (* flip one byte mid-payload: load must reject, cached ingest must
       fall back to parsing and still produce the oracle IR *)
    let c_rejects = Rpslyzer.Obs.Counter.make "snapshot.rejects" in
    let c_hits = Rpslyzer.Obs.Counter.make "snapshot.hits" in
    let c_misses = Rpslyzer.Obs.Counter.make "snapshot.misses" in
    Rpslyzer.Obs.enable ();
    Rpslyzer.Obs.reset ();
    let corrupt =
      let ic = open_in_bin snap in
      let s = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
      close_in ic;
      let i = Bytes.length s / 2 in
      Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 0x40));
      Bytes.to_string s
    in
    let oc = open_out_bin snap in
    output_string oc corrupt;
    close_out oc;
    (match Rz_ir.Ir_snapshot.load snap with
     | Ok _ -> fail "flipped-byte snapshot was silently loaded"
     | Error _ -> ());
    let fallback = Ingest.ingest_cached ~snapshot:snap dumps in
    if not (String.equal (Rz_ir.Ir_json.export_string fallback) oracle) then
      fail "corrupt-snapshot fallback did not reproduce the oracle IR";
    let hit = Ingest.ingest_cached ~snapshot:snap dumps in
    if not (String.equal (Rz_ir.Ir_json.export_string hit) oracle) then
      fail "snapshot-hit load did not reproduce the oracle IR";
    let rejects = Rpslyzer.Obs.Counter.get c_rejects in
    let snap_hits = Rpslyzer.Obs.Counter.get c_hits in
    let snap_misses = Rpslyzer.Obs.Counter.get c_misses in
    Rpslyzer.Obs.disable ();
    if rejects < 1 then fail "flipped byte did not bump snapshot.rejects";
    if snap_misses < 1 then fail "corrupt snapshot did not count as a miss";
    if snap_hits < 1 then fail "rewritten snapshot did not count as a hit";
    Sys.remove snap;
    (* thresholds *)
    let parse_speedup = t_parse_seq /. t_parse_par in
    let parse_floor = if quick then 1.4 else 2.0 in
    if parse_speedup < parse_floor then
      fail
        (Printf.sprintf "parse throughput %.2fx is below the %.1fx floor"
           parse_speedup parse_floor);
    let snap_speedup = t_seq /. t_snap_load in
    let snap_floor = if quick then 2.0 else 5.0 in
    if snap_speedup < snap_floor then
      fail
        (Printf.sprintf "snapshot load %.2fx vs cold parse is below the %.1fx floor"
           snap_speedup snap_floor);
    let mibs t = fint bytes /. 1048576. /. t in
    Table.print
      ~header:[ "path"; "secs"; "MiB/s"; "speedup" ]
      [ [ "sequential ablation (parse+lower)"; Printf.sprintf "%.4f" t_seq;
          Printf.sprintf "%.1f" (mibs t_seq); "1.00x" ];
        [ Printf.sprintf "parallel ingest (<=%d domains)" par_domains;
          Printf.sprintf "%.4f" t_par; Printf.sprintf "%.1f" (mibs t_par);
          Printf.sprintf "%.2fx" (t_seq /. t_par) ];
        [ "parse phase: ablation parser"; Printf.sprintf "%.4f" t_parse_seq;
          Printf.sprintf "%.1f" (mibs t_parse_seq); "1.00x" ];
        [ "parse phase: sharded scanner"; Printf.sprintf "%.4f" t_parse_par;
          Printf.sprintf "%.1f" (mibs t_parse_par);
          Printf.sprintf "%.2fx" parse_speedup ];
        [ "snapshot load"; Printf.sprintf "%.4f" t_snap_load;
          Printf.sprintf "%.1f" (mibs t_snap_load);
          Printf.sprintf "%.2fx" snap_speedup ] ];
    if Rz_util.Domains.recommended () < par_domains then
      Printf.printf
        "(parallel rows clamped to %d core(s); domain sharding adds on multicore)\n"
        (Rz_util.Domains.recommended ());
    Printf.printf
      "\n%d dumps, %s bytes; snapshot %s bytes, saved in %.4fs; identical IR held\n"
      n_dumps (Table.commas bytes) (Table.commas snap_bytes) t_snap_save;
    let mode = if quick then "quick" else if big then "big" else "default" in
    let accounting =
      Json.Obj
        [ ("dumps", Json.Int n_dumps);
          ("bytes", Json.Int bytes);
          ("aut_nums", Json.Int (Hashtbl.length oracle_ir.Rz_ir.Ir.aut_nums));
          ("as_sets", Json.Int (Hashtbl.length oracle_ir.Rz_ir.Ir.as_sets));
          ("routes", Json.Int (Rz_ir.Ir.n_route_objs oracle_ir));
          ("errors", Json.Int (List.length oracle_ir.Rz_ir.Ir.errors));
          ("ir_json_bytes", Json.Int (String.length oracle)) ]
    in
    let json =
      Json.Obj
        [ ("mode", Json.String mode);
          ("accounting", accounting);
          ( "sequential",
            Json.Obj
              [ ("secs", Json.Float t_seq); ("mib_per_sec", Json.Float (mibs t_seq)) ] );
          ( "parallel",
            Json.Obj
              [ ("domains_requested", Json.Int par_domains);
                ("domains_effective",
                 Json.Int (min par_domains (max 1 (Rz_util.Domains.recommended ()))));
                ("secs", Json.Float t_par);
                ("mib_per_sec", Json.Float (mibs t_par));
                ("speedup", Json.Float (t_seq /. t_par)) ] );
          ( "parse_phase",
            Json.Obj
              [ ("ablation_secs", Json.Float t_parse_seq);
                ("sharded_secs", Json.Float t_parse_par);
                ("speedup", Json.Float parse_speedup) ] );
          ( "snapshot",
            Json.Obj
              [ ("bytes", Json.Int snap_bytes);
                ("save_secs", Json.Float t_snap_save);
                ("load_secs", Json.Float t_snap_load);
                ("speedup_vs_cold_parse", Json.Float snap_speedup);
                ("flipped_byte", Json.String "rejected") ] );
          ("identical_ir", Json.Bool true);
          ("gc", gc_json ()) ]
    in
    let oc = open_out out in
    output_string oc (Json.to_string ~indent:2 json);
    output_string oc "\n";
    close_out oc;
    Printf.printf "(wrote %s)\n" out;
    (match bench_baseline_path with
     | None -> ()
     | Some path ->
       let text =
         let ic = open_in path in
         let s = really_input_string ic (in_channel_length ic) in
         close_in ic;
         s
       in
       (match Json.of_string text with
        | Error e -> fail (Printf.sprintf "baseline %s: %s" path e)
        | Ok base ->
          (match (Json.member "mode" base, Json.member "accounting" base) with
           | Some (Json.String base_mode), Some base_acc ->
             if base_mode <> mode then
               fail
                 (Printf.sprintf "baseline mode %s does not match run mode %s"
                    base_mode mode)
             else if not (Json.equal base_acc accounting) then
               fail
                 (Printf.sprintf
                    "ingest accounting drifted from baseline %s\nbaseline:  %s\nmeasured: %s"
                    path (Json.to_string base_acc) (Json.to_string accounting))
             else Printf.printf "accounting matches baseline %s\n" path
           | _ -> fail (Printf.sprintf "baseline %s missing mode/accounting" path))));
    exit 0

(* ------------------------------------------------------------------ *)
(* Streaming benchmark (--bench-stream)                                 *)
(* ------------------------------------------------------------------ *)

(* Sustained updates/sec through the incremental verification service
   (bounded queue, churn-safe invalidation, memo-warm sweeps), with the
   contracts that make the number meaningful:

     - differential: the stream's final per-route verdicts must equal a
       from-scratch batch verify of the final RIB on the final database
       generation — the caches must be invisible in the output;
     - bounded memory: the queue high-water mark stays within capacity
       and is reported (the Block policy also guarantees losslessness);
     - chaos survival: a rate-1.0 chaos pass must complete with every
       event abandoned and nothing crashed or deadlocked.

   Accounting (event/verdict integers) is deterministic and gated by
   [--bench-baseline]; throughput floats are reported, not gated. *)
let () =
  match bench_stream_out with
  | None -> ()
  | Some out ->
    section "Streaming verification: sustained updates/sec, bounded queue";
    let module Json = Rpslyzer.Json in
    let module S = Rz_stream.Stream in
    let module E = Rz_routegen.Events in
    let fail msg =
      Printf.eprintf "BENCH STREAM FAILED: %s\n" msg;
      exit 1
    in
    let base_routes =
      List.concat_map
        (fun (d : Rz_bgp.Table_dump.t) -> d.routes)
        world.Rpslyzer.Pipeline.table_dumps
    in
    let view = S.view_of world.Rpslyzer.Pipeline.db base_routes in
    let n_events = if quick then 1500 else 4000 in
    let items = E.generate ~seed:42 ~n:n_events ~edit_rate:0.05 view in
    let capacity = 512 in
    let config =
      { S.default_config with
        window = 256;
        queue_capacity = capacity;
        policy = Rz_stream.Bqueue.Block;
        backoff_ms = 0. }
    in
    Rpslyzer.Obs.disable ();
    let ir = Rz_irr.Db.ir world.Rpslyzer.Pipeline.db in
    let rels = world.Rpslyzer.Pipeline.rels in
    let reps = 3 in
    let best_t = ref infinity and best = ref None in
    for _ = 1 to reps do
      let t = S.create ~config ~ir ~rels () in
      let t0 = Unix.gettimeofday () in
      let stats = S.run ~seed:42 t items in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best_t then begin
        best_t := dt;
        best := Some (t, stats)
      end
    done;
    let t, stats = Option.get !best in
    (* contracts *)
    if stats.S.r_processed <> n_events then fail "events were lost";
    if stats.S.r_dropped <> 0 || stats.S.r_sampled <> 0 then
      fail "Block policy dropped events";
    if stats.S.r_hwm > capacity then fail "queue exceeded its capacity";
    let final_reports = S.reports t in
    let batch_engine = Rz_verify.Engine.create (S.db t) rels in
    List.iter
      (fun (route, streamed) ->
        let batch = Rz_verify.Engine.verify_route batch_engine route in
        if streamed <> batch then
          fail
            (Printf.sprintf "incremental verdict differs from batch for %s"
               (Rz_bgp.Route.to_line route)))
      final_reports;
    (* chaos survival: everything fails, nothing crashes *)
    let chaos_config =
      { config with
        chaos = Some (Rz_fault.Fault.plan ~seed:42 ~rate:1.0 ()) }
    in
    let tc = S.create ~config:chaos_config ~ir ~rels () in
    let t0c = Unix.gettimeofday () in
    let chaos_stats = S.run ~seed:42 tc items in
    let t_chaos = Unix.gettimeofday () -. t0c in
    if chaos_stats.S.r_processed <> n_events then fail "chaos run lost events";
    if chaos_stats.S.r_abandoned <> n_events then
      fail "rate-1.0 chaos did not abandon every event";
    if S.rib_routes tc <> [] then fail "abandoned events mutated the RIB";
    let eps t = if t > 0. then fint n_events /. t else 0. in
    if eps !best_t <= 0. then fail "zero throughput";
    let rib = List.length final_reports in
    let routes =
      List.length (List.filter (fun (_, r) -> r <> None) final_reports)
    in
    let counts = Aggregate.zero_counts () in
    List.iter
      (fun (_, report) ->
        Option.iter
          (fun (r : Rz_verify.Report.route_report) ->
            List.iter
              (fun (h : Rz_verify.Report.hop) ->
                Aggregate.counts_add counts h.Rz_verify.Report.status)
              r.Rz_verify.Report.hops)
          report)
      final_reports;
    Table.print
      ~header:[ "pass"; "secs"; "events/s"; "notes" ]
      [ [ "incremental stream (block)"; Printf.sprintf "%.3f" !best_t;
          Printf.sprintf "%.0f" (eps !best_t);
          Printf.sprintf "hwm %d/%d" stats.S.r_hwm capacity ];
        [ "chaos rate 1.0"; Printf.sprintf "%.3f" t_chaos;
          Printf.sprintf "%.0f" (eps t_chaos);
          Printf.sprintf "%d abandoned" chaos_stats.S.r_abandoned ] ];
    Printf.printf
      "\n%s events: %d applied; %d generations, %d invalidations; final rib \
       %d; incremental == batch held\n"
      (Table.commas n_events) stats.S.r_applied (S.generations t)
      (S.invalidated t) rib;
    let mode = if quick then "quick" else if big then "big" else "default" in
    let accounting =
      Json.Obj
        ([ ("events", Json.Int n_events);
           ("applied", Json.Int stats.S.r_applied);
           ("abandoned", Json.Int stats.S.r_abandoned);
           ("rejected", Json.Int stats.S.r_rejected);
           ("generations", Json.Int (S.generations t));
           ("invalidations", Json.Int (S.invalidated t));
           ("rib", Json.Int rib);
           ("routes", Json.Int routes);
           ("excluded", Json.Int (rib - routes)) ]
        @ List.map
            (fun (label, v) -> (label, Json.Int v))
            (Aggregate.counts_classes counts))
    in
    let json =
      Json.Obj
        [ ("mode", Json.String mode);
          ("accounting", accounting);
          ( "stream",
            Json.Obj
              [ ("secs", Json.Float !best_t);
                ("events_per_sec", Json.Float (eps !best_t));
                ("queue_capacity", Json.Int capacity);
                ("queue_hwm", Json.Int stats.S.r_hwm);
                ("window", Json.Int config.S.window) ] );
          ( "chaos",
            Json.Obj
              [ ("rate", Json.Float 1.0);
                ("secs", Json.Float t_chaos);
                ("events_per_sec", Json.Float (eps t_chaos));
                ("abandoned", Json.Int chaos_stats.S.r_abandoned) ] );
          ("incremental_equals_batch", Json.Bool true);
          ("gc", gc_json ()) ]
    in
    let oc = open_out out in
    output_string oc (Json.to_string ~indent:2 json);
    output_string oc "\n";
    close_out oc;
    Printf.printf "(wrote %s)\n" out;
    (match bench_baseline_path with
     | None -> ()
     | Some path ->
       let text =
         let ic = open_in path in
         let s = really_input_string ic (in_channel_length ic) in
         close_in ic;
         s
       in
       (match Json.of_string text with
        | Error e -> fail (Printf.sprintf "baseline %s: %s" path e)
        | Ok base ->
          (match (Json.member "mode" base, Json.member "accounting" base) with
           | Some (Json.String base_mode), Some base_acc ->
             if base_mode <> mode then
               fail
                 (Printf.sprintf "baseline mode %s does not match run mode %s"
                    base_mode mode)
             else if not (Json.equal base_acc accounting) then
               fail
                 (Printf.sprintf
                    "stream accounting drifted from baseline %s\nbaseline:  \
                     %s\nmeasured: %s"
                    path (Json.to_string base_acc) (Json.to_string accounting))
             else Printf.printf "accounting matches baseline %s\n" path
           | _ -> fail (Printf.sprintf "baseline %s missing mode/accounting" path))));
    exit 0

(* ------------------------------------------------------------------ *)
(* Query-service benchmark (--bench-serve)                             *)
(* ------------------------------------------------------------------ *)

(* Sustained queries/sec through the service's shared dispatch path,
   single-threaded against one pinned generation and then with worker
   domains racing live NRTM generation swaps, with the contracts that
   make the numbers meaningful:

     - response accounting (per-shape counts, payload bytes) against the
       generation-1 database is deterministic and gated by
       [--bench-baseline];
     - the concurrent pass must answer every query — generation swaps
       are invisible to readers except through content;
     - replaying the journal as copy-on-write swaps must land on a
       database canonically fingerprint-identical to re-ingesting the
       post-edit registry from scratch (incremental == batch).

   Throughput floats are reported, not gated. *)
let () =
  match bench_serve_out with
  | None -> ()
  | Some out ->
    section "Query service: queries/sec over live generations";
    let module Json = Rpslyzer.Json in
    let module Serve = Rz_serve.Serve in
    let module Generation = Rz_serve.Generation in
    let module Nrtm = Rz_synthirr.Nrtm in
    let fail msg =
      Printf.eprintf "BENCH SERVE FAILED: %s\n" msg;
      exit 1
    in
    Rpslyzer.Obs.disable ();
    let ir = Rz_irr.Db.ir world.Rpslyzer.Pipeline.db in
    (* workload: origin + flattened-cone lookups over every registered
       ASN plus probes into the journal's fresh 198.18/15 range, cycled
       to the target count *)
    let asns =
      Hashtbl.fold (fun asn _ acc -> asn :: acc) ir.Rz_ir.Ir.aut_nums []
      |> List.sort Rz_net.Asn.compare
    in
    let base_queries =
      List.concat_map
        (fun asn ->
          let s = Rz_net.Asn.to_string asn in
          [ "!g" ^ s; "!i" ^ Rz_synthirr.Generate.cone_set_name asn ^ ",1" ])
        asns
      @ [ "!r198.18.0.0/24"; "!r198.18.1.0/24,o"; "!aAS-NOWHERE" ]
    in
    let base = Array.of_list base_queries in
    let n_queries = if quick then 4_000 else 12_000 in
    let workload =
      Array.init n_queries (fun i -> base.(i mod Array.length base))
    in
    let config = { Serve.default_config with query_timeout_ms = 0 } in
    let store = Generation.init ir in
    let db1 = Generation.current store in
    (* accounting pass (untimed): per-shape counts + payload bytes *)
    let data = ref 0 and no_data = ref 0 and not_found = ref 0 in
    let errors = ref 0 and bytes = ref 0 in
    Array.iter
      (fun q ->
        let resp = Serve.dispatch ~config db1 q in
        bytes := !bytes + String.length (Rz_irr.Irrd_query.render resp);
        match resp with
        | Rz_irr.Irrd_query.Data _ -> incr data
        | Rz_irr.Irrd_query.No_data -> incr no_data
        | Rz_irr.Irrd_query.Not_found_key -> incr not_found
        | Rz_irr.Irrd_query.Error_resp _ -> incr errors
        | Rz_irr.Irrd_query.Quit -> fail "workload contains !q")
      workload;
    if !data = 0 then fail "workload produced no data responses";
    (* timed single-threaded pass: reps, take the best *)
    let reps = 3 in
    let best_t = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      Array.iter (fun q -> ignore (Serve.dispatch ~config db1 q)) workload;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best_t then best_t := dt
    done;
    (* concurrent pass: 4 reader domains, main thread swapping live *)
    let n_ops = if quick then 60 else 200 in
    let ops = Nrtm.generate ~seed:5 ~n:n_ops world.Rpslyzer.Pipeline.dumps in
    let batch_size = max 1 ((List.length ops + 3) / 4) in
    let batches =
      let rec chunk acc cur n = function
        | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
        | op :: rest ->
          if n + 1 >= batch_size then chunk (List.rev (op :: cur) :: acc) [] 0 rest
          else chunk acc (op :: cur) (n + 1) rest
      in
      chunk [] [] 0 ops
    in
    let n_readers = 4 in
    let slice r =
      Array.init
        (n_queries / n_readers)
        (fun i -> workload.((r + (i * n_readers)) mod n_queries))
    in
    let t0c = Unix.gettimeofday () in
    let readers =
      List.init n_readers (fun r ->
          Domain.spawn (fun () ->
              let answered = ref 0 in
              Array.iter
                (fun q ->
                  let db = Generation.current store in
                  ignore (Serve.dispatch ~config db q);
                  incr answered)
                (slice r);
              !answered))
    in
    List.iter (fun batch -> ignore (Generation.apply store batch)) batches;
    let answered = List.fold_left (fun acc d -> acc + Domain.join d) 0 readers in
    let t_concurrent = Unix.gettimeofday () -. t0c in
    if answered <> n_readers * (n_queries / n_readers) then
      fail "concurrent pass lost queries";
    let generations = Generation.generation store in
    if generations <> 1 + List.length batches then
      fail "journal batches did not all publish";
    (* incremental == batch: canonical fingerprint equality *)
    let fp_incremental = Generation.fingerprint (Generation.current store) in
    let fp_batch =
      Generation.fingerprint
        (Rz_irr.Db.of_dumps
           (Nrtm.apply_to_dumps ops world.Rpslyzer.Pipeline.dumps))
    in
    if fp_incremental <> fp_batch then
      fail "generation swaps diverged from batch re-ingest";
    (* scrape-under-load: the [!s] exposition snapshots the whole
       registry and renders the text format inside the same guarded
       dispatch as any query, so it has a cost worth watching. Obs is
       enabled for this pass only (the throughput passes above run
       uninstrumented): ordinary queries warm the serve.* metrics, one
       exposition is strict-parsed, per-call cost is timed
       single-threaded, and then [!s] latency is sampled while
       [n_readers] domains hammer the ordinary workload against the
       same final generation. Call counts and the parse verdict are
       deterministic and ride the gated accounting; costs and
       quantiles are reported, not gated. *)
    let db_final = Generation.current store in
    Rpslyzer.Obs.enable ();
    Rpslyzer.Obs.reset ();
    let stats () =
      Rpslyzer.Obs.to_prometheus (Rpslyzer.Obs.Registry.snapshot ())
    in
    let scrape_once () =
      match Serve.dispatch ~config ~stats db_final "!s" with
      | Rz_irr.Irrd_query.Data payload -> payload
      | _ -> fail "!s did not answer Data under a stats closure"
    in
    Array.iter (fun q -> ignore (Serve.dispatch ~config db_final q)) (slice 0);
    (match Rpslyzer.Obs.parse_prometheus (scrape_once ()) with
     | Error e -> fail ("!s exposition rejected by the strict parser: " ^ e)
     | Ok [] -> fail "!s exposition parsed to zero samples"
     | Ok _ -> ());
    let scrape_calls = if quick then 400 else 1_500 in
    let t0s = Unix.gettimeofday () in
    for _ = 1 to scrape_calls do
      ignore (scrape_once ())
    done;
    let t_scrape = Unix.gettimeofday () -. t0s in
    let scrape_ns_per_call = t_scrape *. 1e9 /. fint scrape_calls in
    let rslices = Array.init n_readers slice in
    let stop_readers = Atomic.make false in
    let scrape_readers =
      List.init n_readers (fun r ->
          Domain.spawn (fun () ->
              let sl = rslices.(r) in
              let n = Array.length sl in
              let i = ref 0 and answered = ref 0 in
              while not (Atomic.get stop_readers) do
                ignore (Serve.dispatch ~config db_final sl.(!i mod n));
                incr i;
                incr answered
              done;
              !answered))
    in
    let lat = Array.make scrape_calls 0.0 in
    let t0l = Unix.gettimeofday () in
    for i = 0 to scrape_calls - 1 do
      let t0 = Rpslyzer.Obs.now_ns () in
      ignore (scrape_once ());
      lat.(i) <- float_of_int (Rpslyzer.Obs.now_ns () - t0)
    done;
    let t_scrape_loaded = Unix.gettimeofday () -. t0l in
    Atomic.set stop_readers true;
    let load_queries =
      List.fold_left (fun acc d -> acc + Domain.join d) 0 scrape_readers
    in
    if load_queries = 0 then fail "scrape-under-load readers answered nothing";
    Rpslyzer.Obs.disable ();
    Array.sort compare lat;
    let pct q =
      lat.(min (scrape_calls - 1) (int_of_float (q *. fint scrape_calls)))
    in
    let qps t n = if t > 0. then fint n /. t else 0. in
    Table.print
      ~header:[ "pass"; "secs"; "queries/s"; "notes" ]
      [ [ "dispatch (1 thread)"; Printf.sprintf "%.3f" !best_t;
          Printf.sprintf "%.0f" (qps !best_t n_queries);
          Printf.sprintf "%d queries" n_queries ];
        [ Printf.sprintf "dispatch (%d domains + swaps)" n_readers;
          Printf.sprintf "%.3f" t_concurrent;
          Printf.sprintf "%.0f" (qps t_concurrent answered);
          Printf.sprintf "%d swaps live" (List.length batches) ];
        [ "scrape !s (1 thread)"; Printf.sprintf "%.3f" t_scrape;
          Printf.sprintf "%.0f" (qps t_scrape scrape_calls);
          Printf.sprintf "%.0f ns/exposition" scrape_ns_per_call ];
        [ Printf.sprintf "scrape !s (%d-domain load)" n_readers;
          Printf.sprintf "%.3f" t_scrape_loaded;
          Printf.sprintf "%.0f" (qps t_scrape_loaded scrape_calls);
          Printf.sprintf "p50 %.0f ns, p99 %.0f ns" (pct 0.5) (pct 0.99) ] ];
    Printf.printf
      "\n%s queries: %d data, %d no-data, %d not-found, %d error; %s response \
       bytes; %d generations; incremental == batch held; %d scrapes \
       strict-parsed\n"
      (Table.commas n_queries) !data !no_data !not_found !errors
      (Table.commas !bytes) generations scrape_calls;
    let mode = if quick then "quick" else if big then "big" else "default" in
    let accounting =
      Json.Obj
        [ ("queries", Json.Int n_queries);
          ("data", Json.Int !data);
          ("no_data", Json.Int !no_data);
          ("not_found", Json.Int !not_found);
          ("error", Json.Int !errors);
          ("response_bytes", Json.Int !bytes);
          ("journal_ops", Json.Int (List.length ops));
          ("journal_batches", Json.Int (List.length batches));
          ("generations", Json.Int generations);
          ("scrape_calls", Json.Int scrape_calls);
          ("scrape_readers", Json.Int n_readers);
          ("scrape_parse_ok", Json.Bool true) ]
    in
    let json =
      Json.Obj
        [ ("mode", Json.String mode);
          ("accounting", accounting);
          ( "serve",
            Json.Obj
              [ ("secs", Json.Float !best_t);
                ("queries_per_sec", Json.Float (qps !best_t n_queries)) ] );
          ( "concurrent",
            Json.Obj
              [ ("readers", Json.Int n_readers);
                ("secs", Json.Float t_concurrent);
                ("queries_per_sec", Json.Float (qps t_concurrent answered));
                ("swaps", Json.Int (List.length batches)) ] );
          ( "scrape",
            Json.Obj
              [ ("calls", Json.Int scrape_calls);
                ("exposition_ns_per_call", Json.Float scrape_ns_per_call);
                ("under_load_p50_ns", Json.Float (pct 0.5));
                ("under_load_p99_ns", Json.Float (pct 0.99));
                ("reader_queries_during_scrapes", Json.Int load_queries) ] );
          ("incremental_equals_batch", Json.Bool true);
          ("gc", gc_json ()) ]
    in
    let oc = open_out out in
    output_string oc (Json.to_string ~indent:2 json);
    output_string oc "\n";
    close_out oc;
    Printf.printf "(wrote %s)\n" out;
    (match bench_baseline_path with
     | None -> ()
     | Some path ->
       let text =
         let ic = open_in path in
         let s = really_input_string ic (in_channel_length ic) in
         close_in ic;
         s
       in
       (match Json.of_string text with
        | Error e -> fail (Printf.sprintf "baseline %s: %s" path e)
        | Ok base ->
          (match (Json.member "mode" base, Json.member "accounting" base) with
           | Some (Json.String base_mode), Some base_acc ->
             if base_mode <> mode then
               fail
                 (Printf.sprintf "baseline mode %s does not match run mode %s"
                    base_mode mode)
             else if not (Json.equal base_acc accounting) then
               fail
                 (Printf.sprintf
                    "serve accounting drifted from baseline %s\nbaseline:  \
                     %s\nmeasured: %s"
                    path (Json.to_string base_acc) (Json.to_string accounting))
             else Printf.printf "accounting matches baseline %s\n" path
           | _ -> fail (Printf.sprintf "baseline %s missing mode/accounting" path))));
    exit 0

let usage =
  let t0 = Unix.gettimeofday () in
  let u = Rpslyzer.Pipeline.usage world in
  Printf.printf "usage stats computed in %.2fs\n" (Unix.gettimeofday () -. t0);
  u

let agg, n_total_routes, n_excluded =
  let t0 = Unix.gettimeofday () in
  let agg, `Total total, `Excluded excluded = Rpslyzer.Pipeline.verify world in
  Printf.printf "verified %s routes in %.2fs\n" (Table.commas total)
    (Unix.gettimeofday () -. t0);
  (agg, total, excluded)

(* The snapshot is captured (and the file written) right here, straight
   after the headline generate -> parse -> lower -> db-build -> routegen
   -> verify pipeline: the later report sections re-run engine pieces ad
   hoc, which would detach verify.hops_total from the aggregate's hop
   count. The text rendering is printed as its own section at the end. *)
let metrics_snapshot =
  match metrics_path with
  | None -> None
  | Some path ->
    let snap = Rpslyzer.Obs.Registry.snapshot () in
    let json = Rpslyzer.Json.to_string (Rpslyzer.Obs.Registry.to_json snap) in
    let oc = open_out path in
    output_string oc json;
    output_char oc '\n';
    close_out oc;
    Printf.printf "(wrote metrics snapshot to %s)\n" path;
    Some snap

let metrics_section () =
  match metrics_snapshot with
  | None -> ()
  | Some snap ->
    section "Metrics (Rz_obs snapshot after the headline verification)";
    Printf.printf "verify.hops_total vs aggregate hops: %d / %d\n\n"
      (List.assoc "verify.hops_total" (Rpslyzer.Obs.Registry.counters snap))
      (Aggregate.n_hops agg);
    print_string (Rpslyzer.Obs.Registry.to_text snap)

(* ------------------------------------------------------------------ *)
(* Table 1                                                              *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: IRRs used, grouped and ordered by priority";
  print_endline
    "(paper: 13 IRRs, 7,073 MiB total, 78,701 aut-nums, 3,367,914 routes —\n\
     \ shape target: RIPE largest, RADB most routes among non-authoritative,\n\
     \ LACNIC contributes zero import/export)";
  Table.print
    ~header:[ "IRR"; "SIZE (KiB)"; "aut-num"; "route"; "import"; "export" ]
    (List.map
       (fun (r : Rz_stats.Usage.table1_row) ->
         [ r.irr;
           Printf.sprintf "%.1f" (fint r.size_bytes /. 1024.);
           Table.commas r.n_aut_num;
           Table.commas r.n_route;
           Table.commas r.n_import;
           Table.commas r.n_export ])
       usage.table1
     @ [ [ "Total";
           Printf.sprintf "%.1f"
             (fint (List.fold_left (fun a (r : Rz_stats.Usage.table1_row) -> a + r.size_bytes) 0 usage.table1)
              /. 1024.);
           Table.commas
             (List.fold_left (fun a (r : Rz_stats.Usage.table1_row) -> a + r.n_aut_num) 0 usage.table1);
           Table.commas
             (List.fold_left (fun a (r : Rz_stats.Usage.table1_row) -> a + r.n_route) 0 usage.table1);
           Table.commas
             (List.fold_left (fun a (r : Rz_stats.Usage.table1_row) -> a + r.n_import) 0 usage.table1);
           Table.commas
             (List.fold_left (fun a (r : Rz_stats.Usage.table1_row) -> a + r.n_export) 0 usage.table1) ] ])

let table1_coverage () =
  section "Table 1 companion: post-merge registry contribution";
  print_endline
    "(the paper's priority merge means lower-priority registries are\n\
     \ shadowed; this shows who actually supplies each object after dedup)";
  let c = Rz_stats.Coverage.compute ~dumps:world.dumps world.db in
  Table.print
    ~header:[ "IRR"; "aut-num"; "as-set"; "route-set"; "route pairs" ]
    (List.map
       (fun (r : Rz_stats.Coverage.row) ->
         [ r.irr; string_of_int r.aut_nums; string_of_int r.as_sets;
           string_of_int r.route_sets; string_of_int r.routes ])
       c.rows);
  Printf.printf "\nroute objects shadowed by the priority merge: %s\n"
    (Table.commas c.shadowed_routes)

(* ------------------------------------------------------------------ *)
(* Figure 1                                                             *)
(* ------------------------------------------------------------------ *)

let figure1 () =
  section "Figure 1: CCDF of rules per aut-num (all vs BGPq4-compatible)";
  write_csv "figure1_ccdf"
    [ "rules"; "p_all"; "p_bgpq4" ]
    (let all = Rz_stats.Usage.ccdf_rules usage.rules_per_aut_num in
     let bq_samples = List.map snd usage.bgpq4_rules_per_aut_num in
     List.map
       (fun (x, p_all) ->
         let p_b =
           match Stats_util.ccdf_at bq_samples [ x ] with
           | [ (_, p) ] -> p
           | _ -> 0.0
         in
         [ string_of_int x; Printf.sprintf "%.6f" p_all; Printf.sprintf "%.6f" p_b ])
       all);
  print_endline
    "(paper: 35.2% of aut-nums have zero rules -> P(>=1) = 64.8%; 10.9% have\n\
     \ >=10; 0.13% have >1000; the BGPq4-compatible series is quantitatively\n\
     \ similar to the all-rules series)";
  let xs = [ 1; 2; 5; 10; 20; 50; 100; 1000 ] in
  let all = Stats_util.ccdf_at (List.map snd usage.rules_per_aut_num) xs in
  let bq = Stats_util.ccdf_at (List.map snd usage.bgpq4_rules_per_aut_num) xs in
  Table.print
    ~header:[ "rules >="; "P(all rules)"; "P(bgpq4-compatible)" ]
    (List.map2
       (fun (x, fa) (_, fb) -> [ string_of_int x; pct fa; pct fb ])
       all bq);
  Printf.printf "\nzero-rule aut-nums: %s (paper 35.2%%)\n"
    (pct (Stats_util.fraction (fun (_, n) -> n = 0) usage.rules_per_aut_num));
  Printf.printf "simple peerings (single ASN or ANY): %s (paper 98.4%%)\n"
    (pct usage.peering_simple_fraction);
  Printf.printf "ASes whose rules are all BGPq4-compatible: %s (paper 94.5%%)\n"
    (pct usage.ases_bgpq4_only)

(* ------------------------------------------------------------------ *)
(* Table 2                                                              *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table 2: objects defined and referenced in rules";
  print_endline
    "(paper: 78,701 / 53,268 / 24,460 / 342 / 203 defined; 60.4% of aut-nums\n\
     \ and 31.7% of as-sets referenced; route-sets referenced far less than\n\
     \ as-sets despite similar maintenance)";
  let t2 = usage.table2 in
  Table.print
    ~header:[ ""; "aut-num"; "as-set"; "route-set"; "peering-set"; "filter-set" ]
    [ [ "Defined"; Table.commas t2.defined_aut_num; Table.commas t2.defined_as_set;
        Table.commas t2.defined_route_set; Table.commas t2.defined_peering_set;
        Table.commas t2.defined_filter_set ];
      [ "Referenced overall"; Table.commas t2.ref_overall_aut_num;
        Table.commas t2.ref_overall_as_set; Table.commas t2.ref_overall_route_set;
        Table.commas t2.ref_overall_peering_set; Table.commas t2.ref_overall_filter_set ];
      [ "  in peering"; Table.commas t2.ref_peering_aut_num;
        Table.commas t2.ref_peering_as_set; "-"; Table.commas t2.ref_peering_peering_set; "-" ];
      [ "  in filter"; Table.commas t2.ref_filter_aut_num; Table.commas t2.ref_filter_as_set;
        Table.commas t2.ref_filter_route_set; "-"; Table.commas t2.ref_filter_filter_set ] ];
  Printf.printf "\nfilter shapes: %s\n"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) usage.filter_kind_histogram))

(* ------------------------------------------------------------------ *)
(* Section 4 prose statistics                                           *)
(* ------------------------------------------------------------------ *)

let section4_stats () =
  section "Section 4: route-object and as-set statistics";
  let rs = usage.route_stats in
  print_endline
    "(paper: 3,904,352 route objects / 3,367,914 pairs / 2,817,344 prefixes;\n\
     \ 24.7% of prefixes multi-object, of which 58.1% multi-origin; 67.3%\n\
     \ multi-maintainer)";
  Printf.printf "route objects %s, unique (prefix, origin) %s, unique prefixes %s\n"
    (Table.commas rs.n_objects) (Table.commas rs.n_prefix_origin) (Table.commas rs.n_prefixes);
  Printf.printf "multi-object prefixes: %s (%s of prefixes)\n"
    (Table.commas rs.multi_object_prefixes)
    (pct (fint rs.multi_object_prefixes /. fint rs.n_prefixes));
  Printf.printf "  of which multi-origin: %s (%s)\n"
    (Table.commas rs.multi_origin_prefixes)
    (pct (fint rs.multi_origin_prefixes /. fint (max 1 rs.multi_object_prefixes)));
  Printf.printf "  of which multi-maintainer: %s (%s)\n"
    (Table.commas rs.multi_maintainer_prefixes)
    (pct (fint rs.multi_maintainer_prefixes /. fint (max 1 rs.multi_object_prefixes)));
  let s = usage.as_set_stats in
  print_endline
    "\n(paper: 53,268 as-sets; 14.5% empty, 32.7% singleton, 1.4% >10k members,\n\
     \ 3 contain ANY, 25.5% recursive, of which 22.4% loop and 23.0% depth>=5)";
  Printf.printf "as-sets %d: empty %s, singleton %s, >10k %s, contains-ANY %d\n" s.n_sets
    (pct (fint s.empty /. fint s.n_sets))
    (pct (fint s.singleton /. fint s.n_sets))
    (pct (fint s.over_10k /. fint s.n_sets))
    s.contains_any;
  Printf.printf "recursive %s; of recursive: loops %s, depth>=5 %s\n"
    (pct (fint s.recursive /. fint s.n_sets))
    (pct (fint s.with_loop /. fint (max 1 s.recursive)))
    (pct (fint s.depth_5_plus /. fint (max 1 s.recursive)));
  let e = usage.error_stats in
  print_endline "\n(paper: 663 syntax errors, 12 invalid as-set names, 17 invalid route-set names)";
  Printf.printf "errors: %d syntax, %d invalid as-set names, %d invalid route-set names\n"
    e.syntax_errors e.invalid_as_set_names e.invalid_route_set_names

(* ------------------------------------------------------------------ *)
(* Figures 2-4                                                          *)
(* ------------------------------------------------------------------ *)

let hop_status_overview () =
  section "Hop-status overview (abstract's per-interconnection shares)";
  print_endline
    "(paper: 29.3% strict matches, 19.0% explained by special cases, 40.4%\n\
     \ unverifiable from the RPSL, rest unverified)";
  let c = Aggregate.overall agg in
  let total = fint (Aggregate.n_hops agg) in
  Table.print
    ~header:[ "status"; "hops"; "share" ]
    (List.map
       (fun (label, count) -> [ label; Table.commas count; pct (fint count /. total) ])
       (Aggregate.counts_classes c));
  Printf.printf "\nroutes examined: %s (excluded single-AS/AS_SET: %s)\n"
    (Table.commas n_total_routes) (Table.commas n_excluded)

let counts_row (c : Aggregate.counts) =
  List.map (fun (_, v) -> string_of_int v) (Aggregate.counts_classes c)

let counts_header = [ "verified"; "skipped"; "unrecorded"; "relaxed"; "safelisted"; "unverified" ]

let figure2 () =
  section "Figure 2: route verification status for each AS";
  write_csv "figure2_per_as"
    ([ "asn"; "direction" ] @ counts_header)
    (List.concat_map
       (fun (asn, imports, exports) ->
         [ (string_of_int asn :: "import" :: counts_row imports);
           (string_of_int asn :: "export" :: counts_row exports) ])
       (Aggregate.per_as_list agg));
  print_endline
    "(paper: 74.4% of ASes single-status; 14.2% all-verified, 51.6%\n\
     \ all-unrecorded, 0.34% all-relaxed, 6.9% all-safelisted; 30.9% of ASes\n\
     \ have >=1 special case; 0.03% have skips)";
  let s = Aggregate.per_as_summary agg in
  let f n = pct (fint n /. fint s.n_ases) in
  Table.print
    ~header:[ "metric"; "ASes"; "share" ]
    [ [ "observed ASes"; string_of_int s.n_ases; "100%" ];
      [ "single status (both directions)"; string_of_int s.all_same_status; f s.all_same_status ];
      [ "  all verified"; string_of_int s.all_verified; f s.all_verified ];
      [ "  all unrecorded"; string_of_int s.all_unrecorded; f s.all_unrecorded ];
      [ "  all relaxed"; string_of_int s.all_relaxed; f s.all_relaxed ];
      [ "  all safelisted"; string_of_int s.all_safelisted; f s.all_safelisted ];
      [ "  all unverified"; string_of_int s.all_unverified; f s.all_unverified ];
      [ ">=1 unrecorded"; string_of_int s.with_unrecorded; f s.with_unrecorded ];
      [ ">=1 special case"; string_of_int s.with_special; f s.with_special ];
      [ ">=1 skipped"; string_of_int s.with_skips; f s.with_skips ] ]

let figure3 () =
  section "Figure 3: route verification status for each AS pair";
  write_csv "figure3_per_pair"
    ([ "from"; "to"; "direction" ] @ counts_header)
    (List.map
       (fun (direction, (from_as, to_as), c) ->
         string_of_int from_as :: string_of_int to_as
         :: (match direction with `Import -> "import" | `Export -> "export")
         :: counts_row c)
       (Aggregate.per_pair_list agg));
  print_endline
    "(paper: 91.7% of import pairs and 92% of export pairs single-status;\n\
     \ 63.0% of pairs have unverified routes, 98.98% of unverified cases are\n\
     \ undeclared peerings)";
  let s = Aggregate.per_pair_summary agg in
  Table.print
    ~header:[ "metric"; "value" ]
    [ [ "directed pairs x direction"; Table.commas s.n_pairs ];
      [ "single-status import pairs"; pct s.single_status_import ];
      [ "single-status export pairs"; pct s.single_status_export ];
      [ "pairs with unverified routes"; Table.commas s.pairs_with_unverified ];
      [ "unverified hops that are undeclared peerings"; pct s.unverified_peering_mismatch ] ]

let figure4 () =
  section "Figure 4: verification status for all hops in BGP routes";
  write_csv "figure4_per_route" counts_header
    (List.map counts_row (Aggregate.per_route_list agg));
  print_endline
    "(paper: only 6.6% of routes single-status across all hops — 1.6%\n\
     \ verified, 3.0% unrecorded, 1.6% unverified; most routes mix 2-3\n\
     \ statuses)";
  let s = Aggregate.per_route_summary agg in
  Table.print
    ~header:[ "metric"; "share of routes" ]
    [ [ "single status"; pct s.single_status ];
      [ "  all verified"; pct s.single_verified ];
      [ "  all unrecorded"; pct s.single_unrecorded ];
      [ "  all unverified"; pct s.single_unverified ];
      [ "two statuses"; pct s.two_statuses ];
      [ "three or more"; pct s.three_plus ] ]

let figure5 () =
  section "Figure 5: breakdown of unrecorded cases (ASes with >=1 case)";
  print_endline
    "(paper: 22,562 ASes missing aut-num > 20,048 with zero rules > 2,706\n\
     \ zero-route ASes > 414 missing sets)";
  let b = Aggregate.unrec_breakdown agg in
  Table.print
    ~header:[ "unrecorded cause"; "ASes" ]
    [ [ "no aut-num object"; Table.commas b.ases_no_aut_num ];
      [ "zero import/export rules"; Table.commas b.ases_no_rules ];
      [ "filter references zero-route AS"; Table.commas b.ases_zero_route_as ];
      [ "missing set object"; Table.commas b.ases_missing_set ] ]

let figure6 () =
  section "Figure 6: breakdown of special cases (ASes with >=1 case)";
  print_endline
    "(paper: uphill 23,298 ASes (28.1%) >> missing routes 5,181 (6.2%) >>\n\
     \ export-self 994 (1.2%) > import-customer 325 (0.4%); more export-self\n\
     \ than import-customer)";
  let b = Aggregate.special_breakdown agg in
  Table.print
    ~header:[ "special case"; "ASes" ]
    [ [ "uphill propagation"; Table.commas b.ases_uphill ];
      [ "missing routes"; Table.commas b.ases_missing_routes ];
      [ "export self"; Table.commas b.ases_export_self ];
      [ "import customer"; Table.commas b.ases_import_customer ];
      [ "only-provider policies"; Table.commas b.ases_only_provider ];
      [ "Tier-1 pair"; Table.commas b.ases_tier1_pair ];
      [ "any special case"; Table.commas b.ases_any_special ] ]

(* ------------------------------------------------------------------ *)
(* Performance (Section 3 / Section 5 "Performance" paragraphs)         *)
(* ------------------------------------------------------------------ *)

let performance () =
  section "Performance (paper: 13 IRRs parsed < 5 min; 779M routes in 2h49m)";
  (* parse throughput *)
  let bytes =
    List.fold_left (fun acc (_, text) -> acc + String.length text) 0 world.dumps
  in
  let t0 = Unix.gettimeofday () in
  let reps = if quick then 3 else 10 in
  for _ = 1 to reps do
    ignore (Rz_irr.Db.of_dumps world.dumps)
  done;
  let parse_s = (Unix.gettimeofday () -. t0) /. fint reps in
  Printf.printf "parse+index %s of RPSL: %.3fs (%.1f MiB/s)\n"
    (Printf.sprintf "%.1f KiB" (fint bytes /. 1024.))
    parse_s
    (fint bytes /. 1048576. /. parse_s);
  (* verification throughput *)
  let routes =
    List.concat_map (fun (d : Rz_bgp.Table_dump.t) -> d.routes) world.table_dumps
  in
  let engine = Rz_verify.Engine.create world.db world.rels in
  let t0 = Unix.gettimeofday () in
  List.iter (fun r -> ignore (Rz_verify.Engine.verify_route engine r)) routes;
  let verify_s = Unix.gettimeofday () -. t0 in
  Printf.printf "verify %s routes: %.3fs (%s routes/s, 1 core)\n"
    (Table.commas (List.length routes))
    verify_s
    (Table.commas (int_of_float (fint (List.length routes) /. verify_s)));
  let cores = Rz_util.Domains.recommended () in
  if cores <= 1 then
    print_endline
      "(single-core environment: skipping the multi-domain measurement;\n\
       \ Pipeline.verify_parallel shards routes across OCaml 5 domains for\n\
       \ the paper's 128-core setting — equivalence with the sequential\n\
       \ verifier is covered by the test suite)"
  else begin
    let domains = max 2 (min 8 cores) in
    (* warm the shared caches outside the timed window, as a long-running
       deployment would *)
    Rz_irr.Db.warm_caches world.db;
    Rz_asrel.Rel_db.warm_cones world.rels;
    let t0 = Unix.gettimeofday () in
    let _ = Rpslyzer.Pipeline.verify_parallel ~domains world in
    let par_s = Unix.gettimeofday () -. t0 in
    Printf.printf
      "verify %s routes: %.3fs (%s routes/s, %d domains — the paper used 128 cores)\n"
      (Table.commas (List.length routes))
      par_s
      (Table.commas (int_of_float (fint (List.length routes) /. par_s)))
      domains
  end

(* ------------------------------------------------------------------ *)
(* Security comparison: RPSL verification vs ROV vs ASPA                *)
(* ------------------------------------------------------------------ *)

let security_comparison () =
  section "Security: anomaly detection — RPSL verification vs ROV vs ASPA";
  print_endline
    "(the paper positions RPSL verification next to ROV and ASPA (Section 6):\n\
     \ ROV only checks origins, ASPA only path shape; RPSL carries richer\n\
     \ intent but depends on adoption. Full adoption assumed below.)";
  let topo = world.topo in
  let observer = topo.ases.(0) in
  let roa = Rz_rpki.Roagen.of_topology ~adoption:1.0 topo in
  let aspa = Rz_rpki.Aspa.of_topology ~adoption:1.0 topo in
  let engine = Rz_verify.Engine.create world.db world.rels in
  let rpsl_flags route =
    match Rz_verify.Engine.verify_route engine route with
    | None -> false
    | Some report ->
      List.exists
        (fun (h : Rz_verify.Report.hop) -> h.status = Rz_verify.Status.Unverified)
        report.hops
  in
  let rov_flags (route : Rz_bgp.Route.t) =
    match Rz_bgp.Route.origin route with
    | Some origin -> Rz_rpki.Roa.is_invalid (Rz_rpki.Roa.validate roa route.prefix origin)
    | None -> false
  in
  let aspa_flags route =
    Rz_rpki.Aspa.verify_path aspa (Array.of_list (Rz_bgp.Route.dedup_path route))
    = Rz_rpki.Aspa.Invalid
  in
  let n_events = if quick then 30 else 150 in
  let evaluate name routes =
    let total = List.length routes in
    let count f = List.length (List.filter f routes) in
    [ name; string_of_int total;
      pct (fint (count rpsl_flags) /. fint (max 1 total));
      pct (fint (count rov_flags) /. fint (max 1 total));
      pct (fint (count aspa_flags) /. fint (max 1 total)) ]
  in
  let inject kind =
    List.map
      (fun (e : Rz_routegen.Anomaly.event) -> e.route)
      (Rz_routegen.Anomaly.inject topo ~observer ~n:n_events kind)
  in
  let clean =
    let all =
      List.concat_map (fun (d : Rz_bgp.Table_dump.t) -> d.routes) world.table_dumps
    in
    let arr = Array.of_list all in
    Array.to_list (Array.sub arr 0 (min (2 * n_events) (Array.length arr)))
  in
  Table.print
    ~header:[ "workload"; "routes"; "RPSL flags"; "ROV flags"; "ASPA flags" ]
    [ evaluate "prefix hijack" (inject Rz_routegen.Anomaly.Prefix_hijack);
      evaluate "forged origin" (inject Rz_routegen.Anomaly.Forged_origin);
      evaluate "route leak" (inject Rz_routegen.Anomaly.Route_leak);
      evaluate "clean routes (false positives)" clean ];
  print_endline
    "\nNote: the complementary blind spots match each mechanism's design: ROV\n\
     only sees origins; ASPA cannot see prefix ownership; RPSL coverage is\n\
     broad but its false-positive rate restates the paper's Figure-4 caveat\n\
     that mixed statuses limit anomaly troubleshooting at current adoption."

(* ------------------------------------------------------------------ *)
(* Future-work analytics: relationship inference and sibling detection  *)
(* ------------------------------------------------------------------ *)

let future_work_analytics () =
  section "Future-work analytics (paper Section 7)";
  let inferred = Rz_stats.Infer_rels.infer world.db in
  let acc = Rz_stats.Infer_rels.accuracy ~truth:world.rels inferred in
  Printf.printf
    "AS-relationship inference from RPSL rules: %s links inferred, %s present\n\
     in ground truth, precision %s\n"
    (Table.commas acc.inferred) (Table.commas acc.checked)
    (pct (fint acc.correct /. fint (max 1 acc.checked)));
  let clusters = Rz_stats.Siblings.clusters world.db in
  let sibling_ases = List.fold_left (fun a c -> a + List.length c.Rz_stats.Siblings.asns) 0 clusters in
  Printf.printf "sibling detection via shared maintainers: %d clusters covering %d ASes\n"
    (List.length clusters) sibling_ases;
  let profiles =
    Rz_stats.Classify.classify_all ~rels:world.rels
      ~observed:(Array.to_list world.topo.ases) world.db
  in
  print_endline "\nAS classification by RPSL usage style:";
  Table.print
    ~header:[ "style"; "ASes"; "share" ]
    (List.map
       (fun (style, count) ->
         [ Rz_stats.Classify.style_to_string style; string_of_int count;
           pct (fint count /. fint (List.length profiles)) ])
       (Rz_stats.Classify.histogram profiles))

(* ------------------------------------------------------------------ *)
(* Evolution: RPSL adoption tracked across snapshots                    *)
(* ------------------------------------------------------------------ *)

let evolution () =
  section "Evolution: adoption across simulated periodic scrapes";
  print_endline
    "(IRRs publish no history; the paper and prior work scrape periodically.\n\
     \ Three synthetic scrapes with growing adoption, diffed pairwise.)";
  let topo = world.topo in
  let snapshot quarter =
    (* adoption grows: fewer unregistered / silent ASes each scrape *)
    let config =
      { irr_config with
        Rz_synthirr.Config.seed = irr_config.Rz_synthirr.Config.seed + quarter;
        p_no_aut_num = irr_config.Rz_synthirr.Config.p_no_aut_num -. (0.04 *. fint quarter);
        p_no_rules = irr_config.Rz_synthirr.Config.p_no_rules -. (0.02 *. fint quarter) }
    in
    let w = Rz_synthirr.Generate.generate ~config topo in
    let ir = Rz_ir.Ir.create () in
    List.iter (fun (src, text) -> ignore (Rz_ir.Lower.add_dump ir ~source:src text)) w.dumps;
    ir
  in
  let snapshots = List.map snapshot [ 0; 1; 2 ] in
  List.iteri
    (fun i ir ->
      let n_aut = Hashtbl.length ir.Rz_ir.Ir.aut_nums in
      let with_rules =
        Hashtbl.fold
          (fun _ an acc -> if Rz_ir.Ir.n_rules an > 0 then acc + 1 else acc)
          ir.aut_nums 0
      in
      Printf.printf "scrape %d: %d aut-nums, %s with rules, %d route objects\n" i n_aut
        (pct (fint with_rules /. fint (max 1 n_aut)))
        (Rz_ir.Ir.n_route_objs ir))
    snapshots;
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
      let d = Rz_stats.Evolution.diff ~before:a ~after:b in
      Printf.printf "  diff: %s\n" (Rz_stats.Evolution.summary d);
      pairwise rest
    | _ -> ()
  in
  pairwise snapshots

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (incl. DESIGN.md ablations)                *)
(* ------------------------------------------------------------------ *)

let bechamel_benches () =
  section "Bechamel micro-benchmarks";
  let open Bechamel in
  let ripe_text = List.assoc "RIPE" world.dumps in
  let sample_routes =
    let all =
      List.concat_map (fun (d : Rz_bgp.Table_dump.t) -> d.routes) world.table_dumps
    in
    let arr = Array.of_list all in
    Array.sub arr 0 (min 200 (Array.length arr))
  in
  let engine = Rz_verify.Engine.create world.db world.rels in
  let regex =
    match Rz_aspath.Regex_parse.parse "^AS1 [AS2 AS3]* AS4+ .? AS5$" with
    | Ok ast -> ast
    | Error e -> failwith e
  in
  let regex_path = [| 1; 2; 3; 2; 4; 4; 9; 5 |] in
  (* a set with members for the flattening benches *)
  let some_set =
    let ir = Rz_irr.Db.ir world.db in
    let best = ref None in
    Hashtbl.iter
      (fun _ (s : Rz_ir.Ir.as_set) ->
        if s.member_sets <> [] then
          match !best with
          | None -> best := Some s.name
          | Some _ -> ())
      ir.as_sets;
    Option.value ~default:"AS-DEEP-1-1" !best
  in
  (* naive (memo-less) flattening for the ablation *)
  let naive_flatten name =
    let ir = Rz_irr.Db.ir world.db in
    let rec go name visiting acc =
      let key = Rz_rpsl.Set_name.canonical name in
      if List.mem key visiting then acc
      else
        match Hashtbl.find_opt ir.as_sets key with
        | None -> acc
        | Some set ->
          let acc = List.fold_left (fun acc a -> a :: acc) acc set.member_asns in
          List.fold_left (fun acc child -> go child (key :: visiting) acc) acc
            set.member_sets
    in
    go name [] []
  in
  (* linear route scan for the trie ablation *)
  let all_routes_list =
    let ir = Rz_irr.Db.ir world.db in
    List.rev (Rz_ir.Ir.fold_routes ir ~init:[] ~f:(fun acc r -> r :: acc))
  in
  let probe_prefix =
    match all_routes_list with
    | (r : Rz_ir.Ir.route_obj) :: _ -> r.prefix
    | [] -> Rz_net.Prefix.of_string_exn "192.0.2.0/24"
  in
  let tests =
    [ Test.make ~name:"table1:parse-ripe-dump"
        (Staged.stage (fun () -> ignore (Rz_rpsl.Reader.parse_string ripe_text)));
      Test.make ~name:"figure1:rules-ccdf"
        (Staged.stage (fun () ->
             ignore (Stats_util.ccdf_at (List.map snd usage.rules_per_aut_num) [ 1; 10; 100 ])));
      Test.make ~name:"figures2-6:verify-200-routes"
        (Staged.stage (fun () ->
             Array.iter (fun r -> ignore (Rz_verify.Engine.verify_route engine r)) sample_routes));
      Test.make ~name:"aspath:backtracking-matcher"
        (Staged.stage (fun () -> ignore (Rz_aspath.Regex_match.matches regex regex_path)));
      Test.make ~name:"ablation:cartesian-product-matcher"
        (Staged.stage (fun () ->
             ignore (Rz_aspath.Regex_match.matches_product ~limit:5_000_000 regex regex_path)));
      (let compiled = Rz_aspath.Regex_nfa.compile regex in
       Test.make ~name:"aspath:nfa-subset-simulation"
         (Staged.stage (fun () -> ignore (Rz_aspath.Regex_nfa.matches compiled regex_path))));
      Test.make ~name:"irr:flatten-as-set-memoized"
        (Staged.stage (fun () -> ignore (Rz_irr.Db.flatten_as_set world.db some_set)));
      Test.make ~name:"ablation:flatten-as-set-naive"
        (Staged.stage (fun () -> ignore (naive_flatten some_set)));
      Test.make ~name:"irr:trie-covering-lookup"
        (Staged.stage (fun () -> ignore (Rz_irr.Db.covering_routes world.db probe_prefix)));
      Test.make ~name:"ablation:linear-route-scan"
        (Staged.stage (fun () ->
             ignore
               (List.filter
                  (fun (r : Rz_ir.Ir.route_obj) -> Rz_net.Prefix.contains r.prefix probe_prefix)
                  all_routes_list))) ]
  in
  let grouped = Test.make_grouped ~name:"rpslyzer" tests in
  let quota = if quick then Time.second 0.05 else Time.second 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | _ -> nan
      in
      let pretty =
        if Float.is_nan estimate then "n/a"
        else if estimate > 1e9 then Printf.sprintf "%.2f s" (estimate /. 1e9)
        else if estimate > 1e6 then Printf.sprintf "%.2f ms" (estimate /. 1e6)
        else if estimate > 1e3 then Printf.sprintf "%.2f us" (estimate /. 1e3)
        else Printf.sprintf "%.0f ns" estimate
      in
      rows := [ name; pretty ] :: !rows)
    results;
  Table.print ~header:[ "benchmark"; "time/run" ] (List.sort compare !rows)

let () =
  table1 ();
  table1_coverage ();
  figure1 ();
  table2 ();
  section4_stats ();
  hop_status_overview ();
  figure2 ();
  figure3 ();
  figure4 ();
  figure5 ();
  figure6 ();
  performance ();
  security_comparison ();
  future_work_analytics ();
  evolution ();
  metrics_section ();
  bechamel_benches ();
  print_newline ()
